package core_test

import (
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/features"
	"repro/internal/matgen"
	"repro/internal/obs"
	"repro/internal/sparse"
	"repro/internal/timing"
)

// The asynchronous pipeline's timed regions run on a background goroutine,
// but the FakeClock replay stays deterministic: post-launch solver SpMV calls
// are untimed (the decision is made, no ledger is armed yet), so the
// background job is the only clock consumer while it runs, and every region
// it brackets measures exactly the scripted step.

// TestAsyncDeferredSwapGoldenReplay drives the loop to the gate under a 1ms
// auto-step, asserts the swap is deferred (the solver keeps its current
// format until a swap point), then adopts and checks the paid/hidden split
// and the journaled ledger arithmetic to the exact scripted values:
//
//	paid   = stage-1 forecast          = 0.001
//	hidden = features + decide + convert = 0.003
func TestAsyncDeferredSwapGoldenReplay(t *testing.T) {
	preds := predictors(t)
	clk := timing.NewFakeClock()
	clk.SetAutoStep(time.Millisecond)
	journal := obs.NewJournal(0)
	cfg := replayConfig(clk)
	cfg.Async = true
	cfg.Journal = journal
	m := genCSR(t, matgen.FamBanded, 4000, 7)
	ad := core.NewAdaptive(m, 1e-8, preds, cfg, false)
	driveLoop(ad, 15, 1, 0.995)

	// The pipeline fired at iteration 15 and dispatched stage 2; nothing can
	// be installed before the next swap point, whether or not the background
	// work already finished.
	st := ad.Stats()
	if !st.Async || !st.Pending {
		t.Fatalf("after launch: Async=%v Pending=%v, want true/true", st.Async, st.Pending)
	}
	if st.Stage2Ran || st.Converted || ad.Format() != sparse.FmtCSR {
		t.Fatalf("swap not deferred: %+v (format %v)", st, ad.Format())
	}
	if _, ok := ad.TraceID(); ok {
		t.Fatal("trace journaled before adoption")
	}

	if !ad.WaitPending() {
		t.Fatal("WaitPending found no job")
	}
	st = ad.Stats()
	if st.Pending {
		t.Fatal("still pending after WaitPending")
	}
	if !st.Stage2Ran || !st.Converted || st.Format == sparse.FmtCSR {
		t.Fatalf("banded long loop did not adopt a conversion: %+v", st)
	}
	ms := time.Millisecond.Seconds()
	if st.PaidSeconds != ms {
		t.Errorf("PaidSeconds = %g, want exactly %g (stage 1 only)", st.PaidSeconds, ms)
	}
	if st.HiddenSeconds != 3*ms {
		t.Errorf("HiddenSeconds = %g, want exactly %g", st.HiddenSeconds, 3*ms)
	}
	if st.FeatureSeconds != ms || st.PredictSeconds != 2*ms || st.ConvertSeconds != ms {
		t.Errorf("overheads = %g/%g/%g, want %g/%g/%g",
			st.FeatureSeconds, st.PredictSeconds, st.ConvertSeconds, ms, 2*ms, ms)
	}
	if got := ad.OverheadSeconds(); got != 4*ms {
		t.Errorf("OverheadSeconds = %g, want exactly %g", got, 4*ms)
	}
	if st.PaidSeconds+st.HiddenSeconds != ad.OverheadSeconds() {
		t.Errorf("paid %g + hidden %g != total %g", st.PaidSeconds, st.HiddenSeconds, ad.OverheadSeconds())
	}

	// The trace was journaled at adoption with the split and a ledger that
	// charges only the paid share.
	id, ok := ad.TraceID()
	if !ok {
		t.Fatal("no trace after adoption")
	}
	tr, found := journal.Get(id)
	if !found {
		t.Fatal("trace missing from journal")
	}
	if !tr.Async || tr.Canceled || !tr.Converted {
		t.Fatalf("trace flags: %+v", tr)
	}
	if tr.PaidSeconds != ms || tr.HiddenSeconds != 3*ms {
		t.Errorf("trace split = %g/%g, want %g/%g", tr.PaidSeconds, tr.HiddenSeconds, ms, 3*ms)
	}
	if tr.Ledger.OverheadSeconds != ms || tr.Ledger.HiddenSeconds != 3*ms {
		t.Errorf("ledger split = %g/%g, want %g/%g",
			tr.Ledger.OverheadSeconds, tr.Ledger.HiddenSeconds, ms, 3*ms)
	}
	if tr.Ledger.NetSeconds != -ms || tr.Ledger.RegretSeconds != ms {
		t.Errorf("ledger seed: net %g regret %g, want %g/%g",
			tr.Ledger.NetSeconds, tr.Ledger.RegretSeconds, -ms, ms)
	}

	// Post-adoption SpMV calls are timed again for the ledger. Script them at
	// 0.5ms (each timed region consumes two Now calls; the elapsed time is
	// the opening call's advance): with a 1ms baseline, three such calls save
	// 3 * 0.5ms = 1.5ms, repaying the 1ms paid share — net arithmetic exact.
	halfMS := (500 * time.Microsecond).Seconds()
	clk.Script(500*time.Microsecond, 0, 500*time.Microsecond, 0, 500*time.Microsecond, 0)
	rows, cols := ad.Dims()
	x := make([]float64, cols)
	y := make([]float64, rows)
	for i := 0; i < 3; i++ {
		ad.SpMV(y, x)
	}
	tr, _ = journal.Get(id)
	l := tr.Ledger
	if l.PostSpMVCalls != 3 {
		t.Fatalf("PostSpMVCalls = %d, want 3", l.PostSpMVCalls)
	}
	// Mirror the ledger's own accumulation order so the comparison is exact
	// in float64, not merely close: the baseline is the mean of the 15
	// pre-decision 1ms observations, the realized rate the mean of the three
	// scripted 0.5ms ones.
	var base float64
	for i := 0; i < 15; i++ {
		base += ms
	}
	baseline := base / 15
	post := halfMS + halfMS + halfMS
	wantSaved := (baseline - post/3) * 3
	if l.SavedSeconds != wantSaved {
		t.Errorf("SavedSeconds = %g, want exactly %g", l.SavedSeconds, wantSaved)
	}
	if l.BaselineSpMVSeconds != baseline {
		t.Errorf("BaselineSpMVSeconds = %g, want %g", l.BaselineSpMVSeconds, baseline)
	}
	if want := wantSaved - ms; l.NetSeconds != want {
		t.Errorf("NetSeconds = %g, want exactly %g (saved - paid; hidden never charged)", l.NetSeconds, want)
	}
	if !l.BrokeEven || l.RegretSeconds != 0 {
		t.Errorf("BrokeEven=%v RegretSeconds=%g after repaying the paid share", l.BrokeEven, l.RegretSeconds)
	}
}

// latchClock wraps a FakeClock so one specific Now call (1-based) blocks
// until the test releases it — pinning the background pipeline mid-flight.
type latchClock struct {
	fake    *timing.FakeClock
	mu      sync.Mutex
	blockAt int
	calls   int
	gate    chan struct{}
	blocked chan struct{}
}

func newLatchClock(fake *timing.FakeClock, blockAt int) *latchClock {
	return &latchClock{fake: fake, blockAt: blockAt, gate: make(chan struct{}), blocked: make(chan struct{})}
}

func (c *latchClock) Now() time.Time {
	c.mu.Lock()
	c.calls++
	n := c.calls
	c.mu.Unlock()
	if n == c.blockAt {
		close(c.blocked)
		<-c.gate
	}
	return c.fake.Now()
}

func (c *latchClock) NowCalls() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.calls
}

// TestAsyncCancelBeforeAdoption pins the background job at the start of its
// feature-extraction region, closes the wrapper (the solver "converged"
// first), and asserts Close neither blocks nor adopts: the wrapper stays on
// CSR, a canceled stage-1-only trace is journaled, and — once released — the
// background goroutine notices the flag after its current region and never
// starts the conversion.
func TestAsyncCancelBeforeAdoption(t *testing.T) {
	preds := predictors(t)
	fake := timing.NewFakeClock()
	fake.SetAutoStep(time.Millisecond)
	// Clock call schedule: stage 1 brackets calls 1-2 on the solver
	// goroutine; the background job's feature region opens at call 3.
	clk := newLatchClock(fake, 3)
	journal := obs.NewJournal(0)
	cfg := core.Config{K: 15, TH: 15, Margin: 0.1, Async: true, Clock: clk, Journal: journal}
	m := genCSR(t, matgen.FamBanded, 4000, 7)
	ad := core.NewAdaptive(m, 1e-8, preds, cfg, false)
	// No SpMV calls: the overhead gate needs a measured baseline and disarms
	// without one, so stage 2 launches on the stage-1 forecast alone.
	driveLoop(ad, 15, 0, 0.995)

	select {
	case <-clk.blocked:
	case <-time.After(5 * time.Second):
		t.Fatal("background pipeline never reached feature extraction")
	}
	done := make(chan struct{})
	go func() { ad.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close blocked on the in-flight background job")
	}

	st := ad.Stats()
	if !st.Canceled || st.Pending {
		t.Fatalf("after Close: Canceled=%v Pending=%v, want true/false", st.Canceled, st.Pending)
	}
	if st.Stage2Ran || st.Converted || ad.Format() != sparse.FmtCSR {
		t.Fatalf("canceled job was adopted: %+v (format %v)", st, ad.Format())
	}
	id, ok := ad.TraceID()
	if !ok {
		t.Fatal("Close did not journal the abandoned trace")
	}
	tr, _ := journal.Get(id)
	if !tr.Canceled || !tr.Async || tr.Stage2Ran {
		t.Fatalf("canceled trace flags: Canceled=%v Async=%v Stage2Ran=%v", tr.Canceled, tr.Async, tr.Stage2Ran)
	}
	if tr.PredictedTotal < 1000 || len(tr.Gates) == 0 {
		t.Errorf("canceled trace lost its stage-1 data: total=%d gates=%d", tr.PredictedTotal, len(tr.Gates))
	}

	// Release the job: it finishes the feature region (calls 3-4), observes
	// the flag, and exits without ever opening the decide or convert regions.
	close(clk.gate)
	deadline := time.Now().Add(5 * time.Second)
	for clk.NowCalls() < 4 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := clk.NowCalls(); got != 4 {
		t.Errorf("clock calls = %d, want exactly 4 (canceled job must not reach decide/convert)", got)
	}
	// The wrapper stays usable on its current format, and Close is idempotent.
	rows, cols := ad.Dims()
	x := make([]float64, cols)
	y := make([]float64, rows)
	ad.SpMV(y, x)
	ad.Close()
	if ad.WaitPending() {
		t.Error("WaitPending found a job after Close")
	}
}

// TestAsyncConcurrentSpMVDuringSwap hammers a SafeAdaptive with concurrent
// SpMV and SwapPoint callers while the background pipeline converts — under
// -race this is the torn-matrix check: the swap happens under the handle
// lock, so every concurrent reader must compute the same y as the CSR
// reference, before and after the flip.
func TestAsyncConcurrentSpMVDuringSwap(t *testing.T) {
	preds := predictors(t)
	m := genCSR(t, matgen.FamBanded, 4000, 7)
	cfg := core.Config{K: 15, TH: 15, Margin: 0.1, Async: true}
	sa := core.NewSafeAdaptive(core.NewAdaptive(m, 1e-8, preds, cfg, false))
	rows, cols := m.Dims()
	x := make([]float64, cols)
	for i := range x {
		x[i] = float64(i%7) - 3
	}
	want := make([]float64, rows)
	m.SpMV(want, x)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	errc := make(chan string, 4)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			y := make([]float64, rows)
			for n := 0; ; n++ {
				select {
				case <-stop:
					return
				default:
				}
				sa.SpMV(y, x)
				for i := range y {
					if math.Abs(y[i]-want[i]) > 1e-9*(1+math.Abs(want[i])) {
						select {
						case errc <- "torn or wrong SpMV result during swap":
						default:
						}
						return
					}
				}
				if n%3 == g {
					sa.SwapPoint()
				}
			}
		}(g)
	}
	// Feed progress from the main goroutine: the 15th report launches the
	// background pipeline while the readers keep multiplying.
	r := 1.0
	for i := 0; i < 30; i++ {
		r *= 0.995
		sa.RecordProgress(r)
		time.Sleep(time.Millisecond)
	}
	sa.WaitPending()
	close(stop)
	wg.Wait()
	select {
	case msg := <-errc:
		t.Fatal(msg)
	default:
	}
	st := sa.Stats()
	if !st.Async || !st.Stage2Ran {
		t.Fatalf("pipeline did not complete async: %+v", st)
	}
	if !st.Converted {
		t.Skipf("bundle chose to stay on CSR (%v); swap path not exercised", st.Decision.Format)
	}
	// One more read on the adopted format against the dense reference.
	y := make([]float64, rows)
	sa.SpMV(y, x)
	for i := range y {
		if math.Abs(y[i]-want[i]) > 1e-9*(1+math.Abs(want[i])) {
			t.Fatalf("post-swap SpMV differs at %d: %g vs %g", i, y[i], want[i])
		}
	}
}

// TestDecideOverlapProperties checks the overlap-aware cost model against
// the inline one: with no overlap budget they are identical (bit-for-bit,
// same argmin), and an overlap budget can only lower a candidate's cost —
// with a full budget the conversion term vanishes entirely, leaving the
// per-iteration comparison.
func TestDecideOverlapProperties(t *testing.T) {
	preds := predictors(t)
	for _, fam := range []matgen.Family{matgen.FamBanded, matgen.FamRandom, matgen.FamPowerLaw} {
		m := genCSR(t, fam, 3000, 11)
		fs := features.Extract(m)
		blocks := features.CountBlocks(m, sparse.DefaultLimits.BSRBlockSize)
		for _, remaining := range []float64{20, 200, 5000} {
			inline := preds.Decide(fs, blocks, remaining, sparse.DefaultLimits, 0.1)
			zero := preds.DecideOverlap(fs, blocks, remaining, 0, sparse.DefaultLimits, 0.1)
			if zero.Format != inline.Format {
				t.Errorf("%v r=%g: overlap=0 chose %v, inline chose %v", fam, remaining, zero.Format, inline.Format)
			}
			for f, c := range inline.PredictedCost {
				if zc, ok := zero.PredictedCost[f]; !ok || zc != c {
					t.Errorf("%v r=%g %v: overlap=0 cost %g != inline cost %g", fam, remaining, f, zc, c)
				}
			}
			full := preds.DecideOverlap(fs, blocks, remaining, remaining, sparse.DefaultLimits, 0.1)
			for f, c := range full.PredictedCost {
				ic, ok := inline.PredictedCost[f]
				if !ok {
					continue
				}
				if c > ic {
					t.Errorf("%v r=%g %v: overlap raised the cost %g -> %g", fam, remaining, f, ic, c)
				}
				if f != sparse.FmtCSR {
					// conv hidden entirely: cost = overlap spent in old format
					// + the rest at the predicted rate; never above inline's
					// conv + remaining*spmv, and strictly below when conv > 0.
					conv := inline.PredictedConv[f]
					spmv := inline.PredictedSpMV[f]
					h := math.Min(conv, remaining)
					want := (conv - h) + h + (remaining-h)*spmv
					if c != want {
						t.Errorf("%v r=%g %v: full-overlap cost %g, want %g", fam, remaining, f, c, want)
					}
				}
			}
		}
	}
}
