package core_test

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/matgen"
	"repro/internal/obs"
	"repro/internal/sparse"
	"repro/internal/timing"
)

// traceConfig is replayConfig plus a journal, so every pipeline run leaves a
// DecisionTrace whose numbers are fully scripted by the fake clock.
func traceConfig(clk timing.Clock, j *obs.Journal) core.Config {
	cfg := replayConfig(clk)
	cfg.Journal = j
	cfg.TraceLabel = "replay"
	return cfg
}

// fetchTrace resolves the wrapper's trace or fails the test.
func fetchTrace(t *testing.T, ad *core.Adaptive, j *obs.Journal) obs.DecisionTrace {
	t.Helper()
	id, ok := ad.TraceID()
	if !ok {
		t.Fatal("no trace ID after the pipeline ran")
	}
	tr, ok := j.Get(id)
	if !ok {
		t.Fatalf("trace %d not in the journal", id)
	}
	return tr
}

// TestTraceLedgerConverted replays the convert side of the decision gate
// under the fake clock and asserts the ledger to exact values: every SpMV
// measures exactly the 1ms auto-step, so baseline, realized, overhead, net
// and regret are all closed-form.
func TestTraceLedgerConverted(t *testing.T) {
	preds := predictors(t)
	clk := timing.NewFakeClock()
	clk.SetAutoStep(time.Millisecond)
	journal := obs.NewJournal(0)
	m := genCSR(t, matgen.FamBanded, 4000, 7)
	ad := core.NewAdaptive(m, 1e-8, preds, traceConfig(clk, journal), false)
	driveLoop(ad, 20, 1, 0.995)

	st := ad.Stats()
	if !st.Converted {
		t.Fatalf("banded long loop did not convert: %+v", st.Decision)
	}
	tr := fetchTrace(t, ad, journal)

	// The trace must reproduce core.Stats exactly — same clock, same regions.
	if tr.FeatureSeconds != st.FeatureSeconds || tr.PredictSeconds != st.PredictSeconds ||
		tr.ConvertSeconds != st.ConvertSeconds {
		t.Errorf("trace overheads (%g, %g, %g) != stats (%g, %g, %g)",
			tr.FeatureSeconds, tr.PredictSeconds, tr.ConvertSeconds,
			st.FeatureSeconds, st.PredictSeconds, st.ConvertSeconds)
	}
	if tr.PredictedTotal != st.PredictedTotal {
		t.Errorf("trace PredictedTotal = %d, stats say %d", tr.PredictedTotal, st.PredictedTotal)
	}
	if tr.Chosen != st.Format.String() || !tr.Converted {
		t.Errorf("trace chose %q converted=%v; stats %v converted=%v",
			tr.Chosen, tr.Converted, st.Format, st.Converted)
	}
	if tr.Iterations != 15 {
		t.Errorf("pipeline fired at iteration %d, want K=15", tr.Iterations)
	}
	if tr.Label != "replay" {
		t.Errorf("trace label %q", tr.Label)
	}

	// Both gates must appear with both sides: remaining>=TH and the
	// overhead-conscious gate, both passing in this scenario.
	if len(tr.Gates) < 2 {
		t.Fatalf("want >= 2 gate records, got %+v", tr.Gates)
	}
	g0 := tr.Gates[0]
	if g0.Name != "remaining>=TH" || !g0.Passed ||
		g0.LHS != float64(st.PredictedTotal-15) || g0.RHS != 15 {
		t.Errorf("gate 0 = %+v, want remaining>=TH with LHS %d, RHS 15", g0, st.PredictedTotal-15)
	}
	if g1 := tr.Gates[1]; g1.Name != "remaining>=gate*overhead" || !g1.Passed || g1.RHS <= 0 {
		t.Errorf("gate 1 = %+v", g1)
	}

	// Ledger, exactly. 15 pre-decision SpMV calls at 1ms → baseline 1ms;
	// 5 post-decision calls at 1ms → realized 1ms, speedup 1, saved 0;
	// overhead is the scripted 4ms (stage1 1 + feature 1 + decide 1 +
	// convert 1), all unrepaid.
	l := tr.Ledger
	if !approx(l.BaselineSpMVSeconds, 0.001) {
		t.Errorf("baseline = %g, want 0.001", l.BaselineSpMVSeconds)
	}
	if !approx(l.OverheadSeconds, 0.004) {
		t.Errorf("overhead = %g, want 0.004", l.OverheadSeconds)
	}
	if l.OverheadSeconds != st.FeatureSeconds+st.PredictSeconds+st.ConvertSeconds {
		t.Error("ledger overhead disagrees with core.Stats")
	}
	if l.PostSpMVCalls != 5 || !approx(l.PostSpMVSeconds, 0.005) {
		t.Errorf("post calls %d / %g s, want 5 / 0.005", l.PostSpMVCalls, l.PostSpMVSeconds)
	}
	if !approx(l.RealizedSpMVSeconds, 0.001) || !approx(l.RealizedSpeedup, 1) {
		t.Errorf("realized %g (%gx), want 0.001 (1x)", l.RealizedSpMVSeconds, l.RealizedSpeedup)
	}
	if !approx(l.SavedSeconds, 0) || !approx(l.NetSeconds, -0.004) || l.BrokeEven || !approx(l.RegretSeconds, 0.004) {
		t.Errorf("saved %g net %g brokeEven %v regret %g, want 0 / -0.004 / false / 0.004",
			l.SavedSeconds, l.NetSeconds, l.BrokeEven, l.RegretSeconds)
	}

	// Model-side fields must be self-consistent with the per-format map the
	// same trace carries.
	norm, ok := tr.PredictedSpMVNormByFormat[tr.Chosen]
	if !ok {
		t.Fatalf("chosen format %q missing from PredictedSpMVNormByFormat %v",
			tr.Chosen, tr.PredictedSpMVNormByFormat)
	}
	if l.PredictedSpMVSeconds != norm*l.BaselineSpMVSeconds {
		t.Errorf("predicted per-call %g != norm %g x baseline %g",
			l.PredictedSpMVSeconds, norm, l.BaselineSpMVSeconds)
	}
	if norm > 0 && norm < 1 && l.PredictedBreakEvenCalls <= 0 {
		t.Errorf("predicted speedup %g but break-even %d", 1/norm, l.PredictedBreakEvenCalls)
	}
}

// TestTraceLedgerStay replays the stay side of the conversion gate: an
// absurd margin forces the stage-2 argmin to keep CSR, and the ledger must
// show the overhead as pure (and exactly quantified) regret, with the
// realized per-call time equal to the baseline.
func TestTraceLedgerStay(t *testing.T) {
	preds := predictors(t)
	clk := timing.NewFakeClock()
	clk.SetAutoStep(time.Millisecond)
	journal := obs.NewJournal(0)
	cfg := traceConfig(clk, journal)
	cfg.Margin = 0.9999 // a conversion would need ~free cost to win
	m := genCSR(t, matgen.FamBanded, 4000, 7)
	ad := core.NewAdaptive(m, 1e-8, preds, cfg, false)
	driveLoop(ad, 20, 1, 0.995)

	st := ad.Stats()
	if !st.Stage2Ran || st.Converted {
		t.Fatalf("want stage2-ran decide-stay, got %+v", st)
	}
	tr := fetchTrace(t, ad, journal)
	if tr.Chosen != sparse.FmtCSR.String() || tr.Converted {
		t.Fatalf("trace chose %q converted=%v, want CSR stay", tr.Chosen, tr.Converted)
	}

	// No conversion region ran: overhead is stage1 1ms + feature 1ms +
	// decide 1ms = 3ms, all regret, with break-even pinned to the stayed
	// convention (0) and the predicted per-call time equal to the baseline.
	l := tr.Ledger
	if !approx(l.BaselineSpMVSeconds, 0.001) || !approx(l.PredictedSpMVSeconds, 0.001) || !approx(l.PredictedSpeedup, 1) {
		t.Errorf("baseline %g predicted %g (%gx), want 0.001 / 0.001 / 1x",
			l.BaselineSpMVSeconds, l.PredictedSpMVSeconds, l.PredictedSpeedup)
	}
	if l.PredictedBreakEvenCalls != 0 {
		t.Errorf("break-even %d, want 0 for a stay decision", l.PredictedBreakEvenCalls)
	}
	if !approx(l.OverheadSeconds, 0.003) {
		t.Errorf("overhead = %g, want 0.003", l.OverheadSeconds)
	}
	if l.PostSpMVCalls != 5 || !approx(l.RealizedSpMVSeconds, 0.001) {
		t.Errorf("post %d calls realized %g, want 5 / 0.001", l.PostSpMVCalls, l.RealizedSpMVSeconds)
	}
	if !approx(l.SavedSeconds, 0) || !approx(l.NetSeconds, -0.003) || l.BrokeEven || !approx(l.RegretSeconds, 0.003) {
		t.Errorf("saved %g net %g brokeEven %v regret %g, want 0 / -0.003 / false / 0.003",
			l.SavedSeconds, l.NetSeconds, l.BrokeEven, l.RegretSeconds)
	}

	// The margin inequality must be in the gate list, recorded as blocked.
	found := false
	for _, g := range tr.Gates {
		if g.Name == "stay_cost*(1-margin)>=best_alt" {
			found = true
			if g.Passed {
				t.Errorf("margin gate passed but the decision stayed: %+v", g)
			}
		}
	}
	if !found {
		t.Errorf("margin gate missing from %+v", tr.Gates)
	}
}

// TestTraceLedgerBreakEven scripts a post-decision SpMV cost drop (the fake
// clock's auto-step shrinks right after the pipeline) so the conversion's
// measured saving repays the overhead mid-run, flipping BrokeEven with
// closed-form numbers.
func TestTraceLedgerBreakEven(t *testing.T) {
	preds := predictors(t)
	clk := timing.NewFakeClock()
	clk.SetAutoStep(time.Millisecond)
	journal := obs.NewJournal(0)
	m := genCSR(t, matgen.FamBanded, 4000, 7)
	ad := core.NewAdaptive(m, 1e-8, preds, traceConfig(clk, journal), false)
	// 15 iterations at 1ms trip the pipeline on the 15th progress report.
	driveLoop(ad, 15, 1, 0.995)
	if st := ad.Stats(); !st.Converted {
		t.Fatalf("pipeline did not convert: %+v", st.Decision)
	}
	// The "conversion payoff": post-decision SpMV calls measure 0.1ms.
	clk.SetAutoStep(100 * time.Microsecond)
	rows, cols := ad.Dims()
	x := make([]float64, cols)
	y := make([]float64, rows)
	for i := 0; i < 10; i++ {
		ad.SpMV(y, x)
	}

	l := fetchTrace(t, ad, journal).Ledger
	// Saved = (1ms - 0.1ms) x 10 = 9ms against 4ms overhead: net +5ms.
	if l.PostSpMVCalls != 10 || !approx(l.RealizedSpMVSeconds, 0.0001) {
		t.Fatalf("post %d calls realized %g, want 10 / 0.0001", l.PostSpMVCalls, l.RealizedSpMVSeconds)
	}
	if !approx(l.RealizedSpeedup, 10) {
		t.Errorf("realized speedup %g, want 10", l.RealizedSpeedup)
	}
	if got, want := l.SavedSeconds, 0.009; !approx(got, want) {
		t.Errorf("saved %g, want %g", got, want)
	}
	if got, want := l.NetSeconds, 0.005; !approx(got, want) {
		t.Errorf("net %g, want %g", got, want)
	}
	if !l.BrokeEven || l.RegretSeconds != 0 {
		t.Errorf("brokeEven %v regret %g, want true / 0", l.BrokeEven, l.RegretSeconds)
	}
}

// approx tolerates only float summation rounding (the ledger averages sums
// of scripted 1ms steps), not measurement noise — there is none under the
// fake clock.
func approx(got, want float64) bool {
	d := got - want
	if d < 0 {
		d = -d
	}
	return d < 1e-12
}

// TestTraceEarlyReturnPaths asserts that every pipeline outcome — stage-1
// failure modes aside — leaves a retrievable trace: the "predicted too
// short" return must still journal the failed TH gate, and a sub-K loop
// must leave no trace at all.
func TestTraceEarlyReturnPaths(t *testing.T) {
	preds := predictors(t)

	t.Run("below-K-no-trace", func(t *testing.T) {
		clk := timing.NewFakeClock()
		clk.SetAutoStep(time.Millisecond)
		journal := obs.NewJournal(0)
		m := genCSR(t, matgen.FamBanded, 4000, 7)
		ad := core.NewAdaptive(m, 1e-8, preds, traceConfig(clk, journal), false)
		driveLoop(ad, 10, 1, 0.1)
		if _, ok := ad.TraceID(); ok {
			t.Error("trace exists but the pipeline never ran")
		}
		if journal.Len() != 0 {
			t.Errorf("journal holds %d traces, want 0", journal.Len())
		}
	})

	t.Run("th-gate-blocks", func(t *testing.T) {
		clk := timing.NewFakeClock()
		clk.SetAutoStep(time.Millisecond)
		journal := obs.NewJournal(0)
		m := genCSR(t, matgen.FamBanded, 4000, 7)
		ad := core.NewAdaptive(m, 1e-8, preds, traceConfig(clk, journal), false)
		driveLoop(ad, 16, 1, 0.1) // fast convergence: few remaining iterations
		st := ad.Stats()
		if !st.Stage1Ran || st.Stage2Ran {
			t.Fatalf("want stage-1-only run, got %+v", st)
		}
		tr := fetchTrace(t, ad, journal)
		if tr.Stage2Ran || tr.Chosen != sparse.FmtCSR.String() {
			t.Errorf("trace = %+v, want un-run stage 2 staying CSR", tr)
		}
		if len(tr.Gates) != 1 || tr.Gates[0].Passed {
			t.Errorf("want exactly one failed TH gate, got %+v", tr.Gates)
		}
		if l := tr.Ledger; l.PostSpMVCalls != 0 || l.OverheadSeconds != 0 {
			t.Errorf("stage-1-only ledger should be empty, got %+v", l)
		}
	})
}

// TestTraceStatsSpMVCalls checks the wrapper's total SpMV counter counts
// every call, before and after the decision, timed or not.
func TestTraceStatsSpMVCalls(t *testing.T) {
	preds := predictors(t)
	clk := timing.NewFakeClock()
	clk.SetAutoStep(time.Millisecond)
	m := genCSR(t, matgen.FamBanded, 4000, 7)
	// No journal: post-decision calls go untimed, but must still count.
	ad := core.NewAdaptive(m, 1e-8, preds, replayConfig(clk), false)
	driveLoop(ad, 20, 2, 0.995)
	if got := ad.Stats().SpMVCalls; got != 40 {
		t.Errorf("SpMVCalls = %d, want 40", got)
	}
}
