package core

import (
	"strconv"
	"time"

	"repro/internal/convcache"
	"repro/internal/features"
	"repro/internal/obs"
	"repro/internal/sparse"
	"repro/internal/timing"
)

// Stats records what the adaptive wrapper did during one run, for the
// experiment harness and for users who want to audit the selector.
type Stats struct {
	// Iterations is the number of progress indicators observed.
	Iterations int
	// SpMVCalls is the total number of SpMV calls the wrapper has served,
	// before and after the pipeline decision.
	SpMVCalls int64
	// SpMMCalls is the total number of blocked multi-vector products served.
	// When they dominate SpMV calls at decision time and the bundle carries
	// SpMM cost models, stage 2 prices candidates with the SpMM menu.
	SpMMCalls int64
	// ConvCacheHit reports that stage 2 adopted a conversion published by an
	// earlier tenant instead of converting: ConvertSeconds stays 0 and the
	// publisher's bill appears in HiddenSeconds.
	ConvCacheHit bool
	// Stage1Ran reports whether the lazy tripcount prediction fired.
	Stage1Ran bool
	// PredictedTotal is stage 1's tripcount estimate (0 if stage 1 never ran).
	PredictedTotal int
	// Stage0Skip reports that the structural classifier short-circuited
	// stage 2 as an obvious keep-CSR case (Config.Stage0).
	Stage0Skip bool
	// Stage2Ran reports whether feature extraction + model inference ran.
	Stage2Ran bool
	// Decision is the stage-2 outcome (zero value if stage 2 never ran).
	Decision Decision
	// Converted reports whether the matrix was re-formatted.
	Converted bool
	// Format is the format SpMV is currently running on.
	Format sparse.Format
	// FeatureSeconds, PredictSeconds and ConvertSeconds are the measured
	// runtime overheads of stage 2 (the paper's T_predict and T_convert).
	FeatureSeconds float64
	PredictSeconds float64
	ConvertSeconds float64
	// Async reports that stage 2 was dispatched to a background worker
	// (Config.Async) instead of running inline at the gate.
	Async bool
	// Pending reports a background stage-2 job launched but not yet adopted
	// at a swap point (nor canceled).
	Pending bool
	// Canceled reports a background stage-2 job abandoned via Close before
	// its result could be adopted.
	Canceled bool
	// PaidSeconds and HiddenSeconds partition the three overheads above by
	// whether they stalled the solver (inline on the critical path) or ran
	// overlapped with in-flight iterations on a background worker. Once a
	// launched job has been adopted their sum equals FeatureSeconds +
	// PredictSeconds + ConvertSeconds; inline pipelines have
	// HiddenSeconds = 0.
	PaidSeconds   float64
	HiddenSeconds float64
}

// Adaptive wraps a CSR matrix with the two-stage lazy-and-light scheme. The
// application calls SpMV as usual and reports its convergence progress
// indicator once per loop iteration via RecordProgress; after K iterations
// the wrapper may transparently convert the matrix to a better format.
//
// Adaptive is not safe for concurrent use (it mirrors a single solver
// loop): SpMV, RecordProgress and the accessors must all run on one
// goroutine. To share a wrapped matrix across goroutines — e.g. one
// registry handle serving many requests — use SafeAdaptive, which
// serializes every access behind a mutex.
type Adaptive struct {
	cfg      Config
	preds    *Predictors
	tol      float64
	parallel bool
	clock    timing.Clock

	csr *sparse.CSR
	cur sparse.Matrix

	progress []float64
	decided  bool
	stats    Stats

	// Self-measured SpMV cost, gathered until the pipeline decision: the
	// overhead-conscious gate needs to know what one SpMV costs here to
	// judge whether stage 2's own cost can be amortized.
	spmvSeconds float64
	spmvCalls   int

	// spmmK is the widest block width SpMM has been asked for; the SpMM
	// menu prices candidates at this width.
	spmmK int

	// Decision-journal state: once the pipeline has run with a journal
	// attached, traceID addresses this wrapper's obs.DecisionTrace and
	// ledger is true while post-decision SpMV calls are still being timed
	// to maintain the trace's T_affected ledger.
	traceID uint64
	ledger  bool

	// pending is the in-flight background stage-2 job under Config.Async,
	// nil otherwise. Only the solver goroutine touches this field; the
	// background goroutine communicates through the job's done channel.
	pending *stage2Job

	// spanParent is the request-scoped parent for the spans the pipeline
	// emits (SetSpanParent); the zero value means "no active trace" and
	// suppresses emission. spanNotes buffers per-stage timings until the
	// decision trace is journaled, when they flush to Config.SpanSink
	// tagged with the decision ID.
	spanParent obs.SpanContext
	spanNotes  []spanNote
}

// spanNote is one buffered stage timing awaiting flush to the span sink.
type spanNote struct {
	name  string
	start time.Time
	secs  float64
	attrs [][2]string
}

// NewAdaptive wraps a matrix in its default CSR format. tol is the
// convergence tolerance of the surrounding loop (the stage-1 predictor
// forecasts when the progress indicator will cross it). parallel selects
// the goroutine-parallel kernels.
func NewAdaptive(a *sparse.CSR, tol float64, preds *Predictors, cfg Config, parallel bool) *Adaptive {
	if cfg.K <= 0 {
		cfg.K = DefaultConfig().K
	}
	if cfg.TH <= 0 {
		cfg.TH = DefaultConfig().TH
	}
	if cfg.Lim == (sparse.Limits{}) {
		cfg.Lim = sparse.DefaultLimits
	}
	if cfg.Tripcount.MaxIters <= 0 {
		cfg.Tripcount = DefaultConfig().Tripcount
	}
	clock := cfg.Clock
	if clock == nil {
		clock = timing.WallClock{}
	}
	return &Adaptive{
		cfg:      cfg,
		preds:    preds,
		tol:      tol,
		parallel: parallel,
		clock:    clock,
		csr:      a,
		cur:      a,
		stats:    Stats{Format: sparse.FmtCSR},
	}
}

// Dims implements the solver Operator contract.
func (ad *Adaptive) Dims() (int, int) { return ad.csr.Dims() }

// SpMV computes y = A*x on whichever format the matrix currently has.
// Until the pipeline decision the calls are timed (two clock observations,
// nanoseconds of overhead on the wall clock) so the gate can reason in SpMV
// units; once a decision trace exists, timing continues so its T_affected
// ledger can compare the measured payoff against the model's promise.
func (ad *Adaptive) SpMV(y, x []float64) {
	ad.stats.SpMVCalls++
	if ad.decided && !ad.ledger {
		ad.run(y, x)
		return
	}
	start := ad.clock.Now()
	ad.run(y, x)
	elapsed := timing.Since(ad.clock, start).Seconds()
	if !ad.decided {
		ad.spmvSeconds += elapsed
		ad.spmvCalls++
		return
	}
	// Post-decision: stream the observation into the journal's ledger.
	if !ad.cfg.Journal.Update(ad.traceID, func(t *obs.DecisionTrace) {
		t.Ledger.RecordPost(elapsed)
	}) {
		ad.ledger = false // trace evicted: stop paying for timing
	}
}

// run executes one SpMV on the current format.
func (ad *Adaptive) run(y, x []float64) {
	if ad.parallel {
		ad.cur.SpMVParallel(y, x)
	} else {
		ad.cur.SpMV(y, x)
	}
}

// SpMM computes the blocked product Y = A*X with k row-major right-hand
// sides on whichever format the matrix currently has, through the sparse
// package dispatcher (native blocked kernel where the format provides one).
// Counting these calls is what steers stage 2 onto the SpMM cost menu for
// multi-vector-dominant handles; post-decision calls feed the T_affected
// ledger per column, the unit the decision was priced in.
func (ad *Adaptive) SpMM(y, x []float64, k int) {
	ad.stats.SpMMCalls++
	if k > ad.spmmK {
		ad.spmmK = k
	}
	if !ad.ledger {
		ad.runSpMM(y, x, k)
		return
	}
	start := ad.clock.Now()
	ad.runSpMM(y, x, k)
	elapsed := timing.Since(ad.clock, start).Seconds()
	if !ad.cfg.Journal.Update(ad.traceID, func(t *obs.DecisionTrace) {
		t.Ledger.RecordPost(elapsed / float64(k))
	}) {
		ad.ledger = false // trace evicted: stop paying for timing
	}
}

func (ad *Adaptive) runSpMM(y, x []float64, k int) {
	if ad.parallel {
		sparse.SpMMParallel(ad.cur, y, x, k)
	} else {
		sparse.SpMM(ad.cur, y, x, k)
	}
}

// RecordProgress feeds one loop iteration's progress indicator (e.g. the
// residual norm a solver computes anyway). After the K-th call the
// lazy-and-light pipeline runs exactly once. Post-decision calls double as
// swap points: a finished background stage-2 job is adopted here, so loops
// that only ever call SpMV + RecordProgress still pick up async conversions.
func (ad *Adaptive) RecordProgress(v float64) {
	ad.progress = append(ad.progress, v)
	ad.stats.Iterations = len(ad.progress)
	if ad.decided {
		ad.adoptPending()
		return
	}
	if len(ad.progress) < ad.cfg.K {
		return
	}
	ad.decided = true
	ad.runPipeline()
}

// runPipeline executes stage 1 and, if the gate opens, stage 2 — inline, or
// dispatched to a background worker under Config.Async. When a journal is
// configured it also assembles the decision trace: every gate inequality is
// recorded with both of its sides, so a trace shows how close each call
// was, not just its verdict. An async launch defers the journal append to
// adoption time, when the measured overheads exist.
func (ad *Adaptive) runPipeline() {
	tr, remaining, ok := ad.runStage1()
	if !ok {
		ad.journalTrace(tr)
		return
	}
	if ad.cfg.Async {
		ad.launchStage2(tr, remaining)
		return
	}
	ad.runStage2Inline(&tr, remaining)
	ad.journalTrace(tr)
}

// runStage1 runs the lazy tripcount prediction and the gates in front of
// stage 2. This part always runs inline — its cost is a handful of scalar
// ops, and the gates need the self-measured SpMV baseline that lives on the
// solver goroutine — so it is always *paid* overhead, even under Async.
// ok reports whether stage 2 should run.
func (ad *Adaptive) runStage1() (tr obs.DecisionTrace, remaining int, ok bool) {
	start := ad.clock.Now()
	total, err := ad.cfg.Tripcount.PredictTotal(ad.progress, ad.tol)
	stage1 := timing.Since(ad.clock, start).Seconds()
	ad.stats.PredictSeconds += stage1
	ad.stats.PaidSeconds += stage1
	ad.stats.Stage1Ran = true
	ad.noteSpan("selector.stage1", start, stage1, [2]string{"mode", "paid"})
	tr = obs.DecisionTrace{
		Label:      ad.cfg.TraceLabel,
		At:         start,
		Iterations: len(ad.progress),
		Chosen:     sparse.FmtCSR.String(),
	}
	if err != nil {
		tr.Stage1Err = err.Error()
		return tr, 0, false
	}
	ad.stats.PredictedTotal = total
	tr.PredictedTotal = total
	remaining = total - len(ad.progress)
	tr.Gates = append(tr.Gates, obs.GateCheck{
		Name: "remaining>=TH", LHS: float64(remaining), RHS: float64(ad.cfg.TH),
		Passed: remaining >= ad.cfg.TH,
	})
	if remaining < ad.cfg.TH {
		return tr, remaining, false // loop predicted too short: conversion can't pay off
	}
	if ad.preds == nil {
		return tr, remaining, false
	}
	// Overhead-conscious gate on stage 2 itself: estimate the feature
	// extraction cost in units of this run's self-measured SpMV time and
	// require enough remaining iterations to plausibly amortize it.
	if ad.cfg.GateOverheadFactor > 0 && ad.cfg.FeatureSecondsPerNNZ > 0 && ad.spmvCalls > 0 {
		avgSpMV := ad.spmvSeconds / float64(ad.spmvCalls)
		if avgSpMV > 0 {
			est := ad.cfg.PredictFixedSeconds + ad.cfg.FeatureSecondsPerNNZ*float64(ad.csr.NNZ())
			overheadNorm := est / avgSpMV
			threshold := ad.cfg.GateOverheadFactor * overheadNorm
			tr.Gates = append(tr.Gates, obs.GateCheck{
				Name: "remaining>=gate*overhead", LHS: float64(remaining), RHS: threshold,
				Passed: float64(remaining) >= threshold,
			})
			if float64(remaining) < threshold {
				return tr, remaining, false
			}
		}
	}
	// Stage-0 structural classifier: one cheap pass that recognizes obvious
	// keep-CSR matrices before the expensive Table I extraction runs. Its
	// (tiny) cost is part of T_predict and always paid — it runs inline on
	// the solver's critical path even under Async.
	if ad.cfg.Stage0.Enabled {
		start := ad.clock.Now()
		stay := ad.cfg.Stage0.ObviousStay(ExtractCheap(ad.csr))
		stage0 := timing.Since(ad.clock, start).Seconds()
		ad.stats.PredictSeconds += stage0
		ad.stats.PaidSeconds += stage0
		ad.noteSpan("selector.stage0", start, stage0,
			[2]string{"mode", "paid"}, [2]string{"obvious_stay", strconv.FormatBool(stay)})
		if stay {
			ad.stats.Stage0Skip = true
			tr.Stage0Skip = true
			return tr, remaining, false
		}
	}
	return tr, remaining, true
}

// runStage2Inline is the synchronous pipeline tail: feature extraction (the
// dominant prediction overhead), model inference, cost-benefit argmin and
// the conversion, all on the solver's critical path — every second of it is
// paid overhead.
func (ad *Adaptive) runStage2Inline(tr *obs.DecisionTrace, remaining int) {
	start := ad.clock.Now()
	fs := features.Extract(ad.csr)
	bsrBlocks := features.CountBlocks(ad.csr, ad.cfg.Lim.BSRBlockSize)
	ad.stats.FeatureSeconds = timing.Since(ad.clock, start).Seconds()
	ad.noteSpan("selector.features", start, ad.stats.FeatureSeconds, [2]string{"mode", "paid"})

	cached := cachedFormats(&ad.cfg)
	start = ad.clock.Now()
	var d Decision
	if ad.preds.HasSpMMMenu() && ad.stats.SpMMCalls > ad.stats.SpMVCalls && ad.spmmK > 0 {
		d = ad.preds.DecideSpMM(fs, bsrBlocks, ad.spmmK, float64(remaining), 0, ad.cfg.Lim, ad.cfg.Margin, cached)
	} else {
		d = ad.preds.DecideOverlapCached(fs, bsrBlocks, float64(remaining), 0, ad.cfg.Lim, ad.cfg.Margin, cached)
	}
	decide := timing.Since(ad.clock, start).Seconds()
	ad.stats.PredictSeconds += decide
	ad.noteSpan("selector.decide", start, decide,
		[2]string{"mode", "paid"}, [2]string{"format", d.Format.String()})
	var fvec []float64
	if ad.cfg.Journal != nil {
		fvec = fs.Vector()
	}
	ad.recordStage2(tr, d, remaining, fvec, ad.preds.Generation)
	if d.Format == sparse.FmtCSR {
		ad.stats.PaidSeconds = ad.OverheadSeconds()
		ad.finishTrace(tr, d)
		return
	}

	// Conversion-cache consult: an earlier tenant may have already paid for
	// this exact (structure, values, format) conversion. A hit adopts the
	// shared matrix — zero conversion work on this handle; the publisher's
	// bill is credited as hidden overhead so the ledger stays honest about
	// the machine work that once happened.
	if cacheUsable(&ad.cfg) {
		key := cacheKeyFor(&ad.cfg, d.Format)
		start = ad.clock.Now()
		e, hit := ad.cfg.ConvCache.Lookup(key)
		lookup := timing.Since(ad.clock, start).Seconds()
		ad.stats.PredictSeconds += lookup
		if hit {
			ad.stats.ConvCacheHit = true
			ad.stats.HiddenSeconds += e.ConvertSeconds
			ad.stats.PaidSeconds = ad.OverheadSeconds()
			ad.noteSpan("convcache.hit", start, lookup,
				[2]string{"format", d.Format.String()},
				[2]string{"hidden_seconds", strconv.FormatFloat(e.ConvertSeconds, 'g', -1, 64)})
			ad.cur = e.M
			ad.stats.Converted = true
			ad.stats.Format = d.Format
			tr.Converted = true
			tr.ConvCacheHit = true
			ad.finishTrace(tr, d)
			return
		}
		ad.noteSpan("convcache.miss", start, lookup, [2]string{"format", d.Format.String()})
	}

	start = ad.clock.Now()
	m, err := sparse.ConvertFromCSR(ad.csr, d.Format, ad.cfg.Lim)
	ad.stats.ConvertSeconds = timing.Since(ad.clock, start).Seconds()
	ad.stats.PaidSeconds = ad.OverheadSeconds()
	ad.noteSpan("selector.convert", start, ad.stats.ConvertSeconds,
		[2]string{"mode", "paid"}, [2]string{"format", d.Format.String()})
	if err != nil {
		// The validity pre-check should prevent this; fall back to CSR.
		tr.ConvertErr = err.Error()
		tr.Chosen = sparse.FmtCSR.String()
		ad.finishTrace(tr, d)
		return
	}
	if cacheUsable(&ad.cfg) {
		ad.cfg.ConvCache.Publish(cacheKeyFor(&ad.cfg, d.Format), convcache.Entry{
			M: m, ConvertSeconds: ad.stats.ConvertSeconds, NNZ: m.NNZ(),
		})
		ad.noteSpan("convcache.publish", start, ad.stats.ConvertSeconds,
			[2]string{"format", d.Format.String()})
	}
	ad.cur = m
	ad.stats.Converted = true
	ad.stats.Format = d.Format
	tr.Converted = true
	ad.finishTrace(tr, d)
}

// recordStage2 folds a stage-2 decision into the stats and the trace,
// including the margin inequality the argmin applied: the cheapest non-CSR
// candidate had to undercut staying by Margin to win. fvec is the feature
// vector the decision consumed (nil when untraced) and gen the generation
// of the predictor bundle that made it — recorded so a completed trace is
// self-contained training data for the online retrainer.
func (ad *Adaptive) recordStage2(tr *obs.DecisionTrace, d Decision, remaining int, fvec []float64, gen int64) {
	ad.stats.Stage2Ran = true
	ad.stats.Decision = d
	tr.Stage2Ran = true
	tr.Chosen = d.Format.String()
	tr.ModelGen = gen
	if ad.cfg.Journal == nil {
		return
	}
	tr.Features = fvec
	tr.PredictedCostByFormat = formatKeyed(d.PredictedCost)
	tr.PredictedSpMVNormByFormat = formatKeyed(d.PredictedSpMV)
	tr.PredictedConvNormByFormat = formatKeyed(d.PredictedConv)
	if alt, ok := bestAlternative(d); ok {
		stay := float64(remaining) * (1 - ad.cfg.Margin)
		tr.Gates = append(tr.Gates, obs.GateCheck{
			Name: "stay_cost*(1-margin)>=best_alt", LHS: stay, RHS: alt,
			Passed: d.Format != sparse.FmtCSR,
		})
	}
}

// journalTrace appends the finished trace to the journal, arms the
// post-decision SpMV timing that maintains its T_affected ledger (only
// traces whose stage 2 ran get one), and flushes the buffered stage spans
// to the span sink now that the decision ID they reference exists.
func (ad *Adaptive) journalTrace(tr obs.DecisionTrace) {
	if ad.cfg.Journal != nil {
		ad.traceID = ad.cfg.Journal.Append(tr)
		ad.ledger = tr.Stage2Ran
	}
	ad.flushSpans(tr)
}

// noteSpan buffers one stage timing for flushSpans. A nil sink makes it
// free, so the pipeline calls it unconditionally.
func (ad *Adaptive) noteSpan(name string, start time.Time, secs float64, attrs ...[2]string) {
	if ad.cfg.SpanSink == nil {
		return
	}
	ad.spanNotes = append(ad.spanNotes, spanNote{name: name, start: start, secs: secs, attrs: attrs})
}

// flushSpans emits the buffered stage notes as spans under the current
// request parent. The conversion span additionally carries the trace's
// final paid/hidden overhead split, so its attributes agree with the
// ledger seeded by finishTrace.
func (ad *Adaptive) flushSpans(tr obs.DecisionTrace) {
	notes := ad.spanNotes
	ad.spanNotes = nil
	sink := ad.cfg.SpanSink
	if sink == nil || len(notes) == 0 || ad.spanParent.Trace.IsZero() {
		return
	}
	fmtFloat := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for _, n := range notes {
		sp := obs.Span{
			Trace:   ad.spanParent.Trace,
			ID:      obs.NewSpanID(),
			Parent:  ad.spanParent.Span,
			Name:    n.name,
			Service: "selector",
			Start:   n.start,
			Seconds: n.secs,
			Attrs:   make(map[string]string, len(n.attrs)+4),
		}
		if ad.traceID != 0 {
			sp.Attrs["decision_id"] = strconv.FormatUint(ad.traceID, 10)
		}
		if tr.Label != "" {
			sp.Attrs["label"] = tr.Label
		}
		for _, kv := range n.attrs {
			sp.Attrs[kv[0]] = kv[1]
		}
		if n.name == "selector.convert" {
			sp.Attrs["paid_seconds"] = fmtFloat(tr.PaidSeconds)
			sp.Attrs["hidden_seconds"] = fmtFloat(tr.HiddenSeconds)
		}
		sink(sp)
	}
}

// SetSpanParent installs the request-scoped span context under which the
// pipeline's stage spans are emitted; the zero value clears it. Like every
// Adaptive method this runs on the solver goroutine.
func (ad *Adaptive) SetSpanParent(sc obs.SpanContext) { ad.spanParent = sc }

// finishTrace fills the trace's measured-overhead fields and seeds the
// ledger with the model-side quantities the payoff will be judged against.
// Only the paid share of the overhead enters the ledger's net balance;
// hidden (overlapped) seconds are reported but never charged.
func (ad *Adaptive) finishTrace(tr *obs.DecisionTrace, d Decision) {
	if ad.cfg.Journal == nil {
		return
	}
	tr.FeatureSeconds = ad.stats.FeatureSeconds
	tr.PredictSeconds = ad.stats.PredictSeconds
	tr.ConvertSeconds = ad.stats.ConvertSeconds
	tr.PaidSeconds = ad.stats.PaidSeconds
	tr.HiddenSeconds = ad.stats.HiddenSeconds
	var baseline float64
	if ad.spmvCalls > 0 {
		baseline = ad.spmvSeconds / float64(ad.spmvCalls)
	}
	// The format the wrapper actually runs on: the decision's pick, or CSR
	// when conversion failed.
	predictedNorm := 1.0
	if ad.stats.Converted {
		if v, ok := d.PredictedSpMV[d.Format]; ok {
			predictedNorm = v
		}
	}
	tr.Ledger.InitPredictions(baseline, predictedNorm,
		ad.stats.PaidSeconds, ad.stats.HiddenSeconds, ad.stats.Converted)
}

// formatKeyed re-keys a per-format map by the formats' names for the
// JSON-facing trace.
func formatKeyed(m map[sparse.Format]float64) map[string]float64 {
	if len(m) == 0 {
		return nil
	}
	out := make(map[string]float64, len(m))
	for f, v := range m {
		out[f.String()] = v
	}
	return out
}

// bestAlternative returns the cheapest predicted non-CSR cost, if any
// candidate survived validity checks.
func bestAlternative(d Decision) (float64, bool) {
	best, ok := 0.0, false
	for f, c := range d.PredictedCost {
		if f == sparse.FmtCSR {
			continue
		}
		if !ok || c < best {
			best, ok = c, true
		}
	}
	return best, ok
}

// Stats returns a copy of the run's bookkeeping.
func (ad *Adaptive) Stats() Stats {
	st := ad.stats
	st.Pending = ad.pending != nil
	return st
}

// Format returns the format SpMV currently runs on.
func (ad *Adaptive) Format() sparse.Format { return ad.stats.Format }

// SetPredictors hot-swaps the stage-2 model bundle. A wrapper whose
// pipeline has not fired yet will decide with the new bundle; one that has
// already decided keeps its outcome (decisions are final per handle) but
// records nothing stale — the bundle pointer is only read at decision time.
// An in-flight background stage-2 job keeps the bundle it captured at
// launch, so a swap never tears a decision in half. Like every Adaptive
// method this must run on the solver goroutine; SafeAdaptive provides the
// concurrent version.
func (ad *Adaptive) SetPredictors(p *Predictors) { ad.preds = p }

// ModelGeneration reports the generation of the bundle the wrapper would
// decide (or decided) with, 0 when no bundle is installed.
func (ad *Adaptive) ModelGeneration() int64 {
	if ad.preds == nil {
		return 0
	}
	return ad.preds.Generation
}

// TraceID returns the journal ID of this wrapper's decision trace, with
// ok=false before the pipeline has run or when no journal is configured.
func (ad *Adaptive) TraceID() (uint64, bool) { return ad.traceID, ad.traceID != 0 }

// OverheadSeconds is the total measured selector overhead (T_predict +
// T_convert) of this run.
func (ad *Adaptive) OverheadSeconds() float64 {
	return ad.stats.FeatureSeconds + ad.stats.PredictSeconds + ad.stats.ConvertSeconds
}
