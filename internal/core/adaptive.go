package core

import (
	"repro/internal/features"
	"repro/internal/sparse"
	"repro/internal/timing"
)

// Stats records what the adaptive wrapper did during one run, for the
// experiment harness and for users who want to audit the selector.
type Stats struct {
	// Iterations is the number of progress indicators observed.
	Iterations int
	// Stage1Ran reports whether the lazy tripcount prediction fired.
	Stage1Ran bool
	// PredictedTotal is stage 1's tripcount estimate (0 if stage 1 never ran).
	PredictedTotal int
	// Stage2Ran reports whether feature extraction + model inference ran.
	Stage2Ran bool
	// Decision is the stage-2 outcome (zero value if stage 2 never ran).
	Decision Decision
	// Converted reports whether the matrix was re-formatted.
	Converted bool
	// Format is the format SpMV is currently running on.
	Format sparse.Format
	// FeatureSeconds, PredictSeconds and ConvertSeconds are the measured
	// runtime overheads of stage 2 (the paper's T_predict and T_convert).
	FeatureSeconds float64
	PredictSeconds float64
	ConvertSeconds float64
}

// Adaptive wraps a CSR matrix with the two-stage lazy-and-light scheme. The
// application calls SpMV as usual and reports its convergence progress
// indicator once per loop iteration via RecordProgress; after K iterations
// the wrapper may transparently convert the matrix to a better format.
//
// Adaptive is not safe for concurrent use (it mirrors a single solver
// loop): SpMV, RecordProgress and the accessors must all run on one
// goroutine. To share a wrapped matrix across goroutines — e.g. one
// registry handle serving many requests — use SafeAdaptive, which
// serializes every access behind a mutex.
type Adaptive struct {
	cfg      Config
	preds    *Predictors
	tol      float64
	parallel bool
	clock    timing.Clock

	csr *sparse.CSR
	cur sparse.Matrix

	progress []float64
	decided  bool
	stats    Stats

	// Self-measured SpMV cost, gathered until the pipeline decision: the
	// overhead-conscious gate needs to know what one SpMV costs here to
	// judge whether stage 2's own cost can be amortized.
	spmvSeconds float64
	spmvCalls   int
}

// NewAdaptive wraps a matrix in its default CSR format. tol is the
// convergence tolerance of the surrounding loop (the stage-1 predictor
// forecasts when the progress indicator will cross it). parallel selects
// the goroutine-parallel kernels.
func NewAdaptive(a *sparse.CSR, tol float64, preds *Predictors, cfg Config, parallel bool) *Adaptive {
	if cfg.K <= 0 {
		cfg.K = DefaultConfig().K
	}
	if cfg.TH <= 0 {
		cfg.TH = DefaultConfig().TH
	}
	if cfg.Lim == (sparse.Limits{}) {
		cfg.Lim = sparse.DefaultLimits
	}
	if cfg.Tripcount.MaxIters <= 0 {
		cfg.Tripcount = DefaultConfig().Tripcount
	}
	clock := cfg.Clock
	if clock == nil {
		clock = timing.WallClock{}
	}
	return &Adaptive{
		cfg:      cfg,
		preds:    preds,
		tol:      tol,
		parallel: parallel,
		clock:    clock,
		csr:      a,
		cur:      a,
		stats:    Stats{Format: sparse.FmtCSR},
	}
}

// Dims implements the solver Operator contract.
func (ad *Adaptive) Dims() (int, int) { return ad.csr.Dims() }

// SpMV computes y = A*x on whichever format the matrix currently has.
// Until the pipeline decision the calls are timed (two clock observations,
// nanoseconds of overhead on the wall clock) so the gate can reason in SpMV
// units.
func (ad *Adaptive) SpMV(y, x []float64) {
	if ad.decided {
		if ad.parallel {
			ad.cur.SpMVParallel(y, x)
		} else {
			ad.cur.SpMV(y, x)
		}
		return
	}
	start := ad.clock.Now()
	if ad.parallel {
		ad.cur.SpMVParallel(y, x)
	} else {
		ad.cur.SpMV(y, x)
	}
	ad.spmvSeconds += timing.Since(ad.clock, start).Seconds()
	ad.spmvCalls++
}

// RecordProgress feeds one loop iteration's progress indicator (e.g. the
// residual norm a solver computes anyway). After the K-th call the
// lazy-and-light pipeline runs exactly once.
func (ad *Adaptive) RecordProgress(v float64) {
	ad.progress = append(ad.progress, v)
	ad.stats.Iterations = len(ad.progress)
	if ad.decided || len(ad.progress) < ad.cfg.K {
		return
	}
	ad.decided = true
	ad.runPipeline()
}

// runPipeline executes stage 1 and, if the gate opens, stage 2.
func (ad *Adaptive) runPipeline() {
	// Stage 1: lazy-and-light tripcount prediction from the progress
	// series. Its cost is a handful of scalar ops — the paper measures ~2ms
	// for its ARIMA, ours is cheaper still — but we time it anyway.
	start := ad.clock.Now()
	total, err := ad.cfg.Tripcount.PredictTotal(ad.progress, ad.tol)
	ad.stats.PredictSeconds += timing.Since(ad.clock, start).Seconds()
	ad.stats.Stage1Ran = true
	if err != nil {
		return
	}
	ad.stats.PredictedTotal = total
	remaining := total - len(ad.progress)
	if remaining < ad.cfg.TH {
		return // loop predicted too short: conversion can't pay off
	}
	if ad.preds == nil {
		return
	}
	// Overhead-conscious gate on stage 2 itself: estimate the feature
	// extraction cost in units of this run's self-measured SpMV time and
	// require enough remaining iterations to plausibly amortize it.
	if ad.cfg.GateOverheadFactor > 0 && ad.cfg.FeatureSecondsPerNNZ > 0 && ad.spmvCalls > 0 {
		avgSpMV := ad.spmvSeconds / float64(ad.spmvCalls)
		if avgSpMV > 0 {
			est := ad.cfg.PredictFixedSeconds + ad.cfg.FeatureSecondsPerNNZ*float64(ad.csr.NNZ())
			overheadNorm := est / avgSpMV
			if float64(remaining) < ad.cfg.GateOverheadFactor*overheadNorm {
				return
			}
		}
	}

	// Stage 2: feature extraction (the dominant prediction overhead), model
	// inference, cost-benefit argmin.
	start = ad.clock.Now()
	fs := features.Extract(ad.csr)
	bsrBlocks := features.CountBlocks(ad.csr, ad.cfg.Lim.BSRBlockSize)
	ad.stats.FeatureSeconds = timing.Since(ad.clock, start).Seconds()

	start = ad.clock.Now()
	d := ad.preds.Decide(fs, bsrBlocks, float64(remaining), ad.cfg.Lim, ad.cfg.Margin)
	ad.stats.PredictSeconds += timing.Since(ad.clock, start).Seconds()
	ad.stats.Stage2Ran = true
	ad.stats.Decision = d
	if d.Format == sparse.FmtCSR {
		return
	}

	start = ad.clock.Now()
	m, err := sparse.ConvertFromCSR(ad.csr, d.Format, ad.cfg.Lim)
	ad.stats.ConvertSeconds = timing.Since(ad.clock, start).Seconds()
	if err != nil {
		// The validity pre-check should prevent this; fall back to CSR.
		return
	}
	ad.cur = m
	ad.stats.Converted = true
	ad.stats.Format = d.Format
}

// Stats returns a copy of the run's bookkeeping.
func (ad *Adaptive) Stats() Stats { return ad.stats }

// Format returns the format SpMV currently runs on.
func (ad *Adaptive) Format() sparse.Format { return ad.stats.Format }

// OverheadSeconds is the total measured selector overhead (T_predict +
// T_convert) of this run.
func (ad *Adaptive) OverheadSeconds() float64 {
	return ad.stats.FeatureSeconds + ad.stats.PredictSeconds + ad.stats.ConvertSeconds
}
