package core
