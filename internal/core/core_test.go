package core_test

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/features"
	"repro/internal/gbt"
	"repro/internal/matgen"
	"repro/internal/sparse"
	"repro/internal/timing"
	"repro/internal/trainer"
)

// trainedPredictors trains a predictor bundle on a model-oracle corpus once
// per test binary.
var cachedPreds *core.Predictors

func predictors(t testing.TB) *core.Predictors {
	t.Helper()
	if cachedPreds != nil {
		return cachedPreds
	}
	entries, err := matgen.Corpus(matgen.CorpusConfig{
		Count: 64, Seed: 5, MinSize: 300, MaxSize: 3000,
	})
	if err != nil {
		t.Fatal(err)
	}
	samples, err := trainer.Collect(entries, timing.NewModelOracle())
	if err != nil {
		t.Fatal(err)
	}
	p := gbt.DefaultParams()
	p.NumRounds = 40
	preds, err := trainer.Train(samples, p, 4)
	if err != nil {
		t.Fatal(err)
	}
	cachedPreds = preds
	return preds
}

func genCSR(t testing.TB, fam matgen.Family, size int, seed int64) *sparse.CSR {
	t.Helper()
	m, err := matgen.Generate(matgen.Spec{Name: "t", Family: fam, Size: size, Degree: 8, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestDecidePrefersCSRForShortLoops(t *testing.T) {
	preds := predictors(t)
	m := genCSR(t, matgen.FamBanded, 2000, 1)
	fs := features.Extract(m)
	blocks := features.CountBlocks(m, sparse.DefaultLimits.BSRBlockSize)
	// With essentially zero remaining iterations, conversion can never pay:
	// every alternative's cost includes a positive conversion term.
	d := preds.Decide(fs, blocks, 1, sparse.DefaultLimits, 0.1)
	if d.Format != sparse.FmtCSR {
		t.Errorf("1 remaining iteration chose %v, want CSR", d.Format)
	}
}

func TestDecideConvertsForLongLoopsOnBanded(t *testing.T) {
	preds := predictors(t)
	m := genCSR(t, matgen.FamBanded, 4000, 2)
	fs := features.Extract(m)
	blocks := features.CountBlocks(m, sparse.DefaultLimits.BSRBlockSize)
	d := preds.Decide(fs, blocks, 100000, sparse.DefaultLimits, 0.1)
	if d.Format == sparse.FmtCSR {
		t.Errorf("100k remaining iterations on a banded matrix stayed on CSR: %v", d.PredictedCost)
	}
}

func TestDecideRespectsValidity(t *testing.T) {
	preds := predictors(t)
	m := genCSR(t, matgen.FamRandom, 2000, 3)
	fs := features.Extract(m)
	blocks := features.CountBlocks(m, sparse.DefaultLimits.BSRBlockSize)
	d := preds.Decide(fs, blocks, 10000, sparse.DefaultLimits, 0.1)
	if _, ok := d.PredictedCost[sparse.FmtDIA]; ok {
		t.Error("DIA considered for a scatter matrix")
	}
	if d.Format == sparse.FmtDIA {
		t.Error("DIA chosen for a scatter matrix")
	}
}

func TestDecideCostMonotoneInRemaining(t *testing.T) {
	preds := predictors(t)
	m := genCSR(t, matgen.FamUniformRows, 3000, 4)
	fs := features.Extract(m)
	blocks := features.CountBlocks(m, sparse.DefaultLimits.BSRBlockSize)
	d1 := preds.Decide(fs, blocks, 10, sparse.DefaultLimits, 0.1)
	d2 := preds.Decide(fs, blocks, 1000, sparse.DefaultLimits, 0.1)
	for f, c1 := range d1.PredictedCost {
		if c2, ok := d2.PredictedCost[f]; ok && c2 < c1 {
			t.Errorf("%v: cost decreased with more iterations: %g -> %g", f, c1, c2)
		}
	}
}

func TestOracleDecide(t *testing.T) {
	conv := map[sparse.Format]float64{
		sparse.FmtELL: 50,
		sparse.FmtDIA: 200,
	}
	spmv := map[sparse.Format]float64{
		sparse.FmtCSR: 1,
		sparse.FmtELL: 0.8,
		sparse.FmtDIA: 0.4,
	}
	// 10 remaining: CSR costs 10; ELL 50+8=58; DIA 200+4. CSR wins.
	if got := core.OracleDecide(conv, spmv, 10); got != sparse.FmtCSR {
		t.Errorf("remaining=10: %v, want CSR", got)
	}
	// 300 remaining: CSR 300; ELL 50+240=290; DIA 200+120=320. ELL wins.
	if got := core.OracleDecide(conv, spmv, 300); got != sparse.FmtELL {
		t.Errorf("remaining=300: %v, want ELL", got)
	}
	// 1000 remaining: CSR 1000; ELL 850; DIA 600. DIA wins.
	if got := core.OracleDecide(conv, spmv, 1000); got != sparse.FmtDIA {
		t.Errorf("remaining=1000: %v, want DIA", got)
	}
}

func TestOverheadObliviousDecide(t *testing.T) {
	spmv := map[sparse.Format]float64{
		sparse.FmtCSR: 1,
		sparse.FmtELL: 0.8,
		sparse.FmtDIA: 0.4,
	}
	if got := core.OverheadObliviousDecide(spmv); got != sparse.FmtDIA {
		t.Errorf("OO picked %v, want DIA", got)
	}
	if got := core.OverheadObliviousDecide(map[sparse.Format]float64{sparse.FmtCSR: 1}); got != sparse.FmtCSR {
		t.Errorf("OO with only CSR picked %v", got)
	}
}

func TestPredictorsValidate(t *testing.T) {
	p := core.NewPredictors()
	if err := p.Validate(); err == nil {
		t.Error("empty predictors validated")
	}
	if err := predictors(t).Validate(); err != nil {
		// A 64-matrix corpus trains every format; if not, the bundle must
		// say which is missing.
		t.Logf("predictors incomplete (acceptable for tiny corpus): %v", err)
	}
}

func TestAdaptiveShortLoopNeverConverts(t *testing.T) {
	preds := predictors(t)
	m := genCSR(t, matgen.FamBanded, 2000, 5)
	ad := core.NewAdaptive(m, 1e-8, preds, core.DefaultConfig(), false)
	// 10 iterations < K=15: pipeline never runs.
	r := 1.0
	for i := 0; i < 10; i++ {
		r *= 0.1
		ad.RecordProgress(r)
	}
	st := ad.Stats()
	if st.Stage1Ran || st.Stage2Ran || st.Converted {
		t.Errorf("short loop triggered pipeline: %+v", st)
	}
	if ad.Format() != sparse.FmtCSR {
		t.Errorf("format changed to %v", ad.Format())
	}
}

func TestAdaptiveGateBlocksNearlyDoneLoop(t *testing.T) {
	preds := predictors(t)
	m := genCSR(t, matgen.FamBanded, 2000, 6)
	ad := core.NewAdaptive(m, 1e-8, preds, core.DefaultConfig(), false)
	// Fast geometric convergence: at iteration 15 the residual is 1e-15,
	// essentially converged; stage 1 must predict few remaining iterations
	// and skip stage 2.
	r := 1.0
	for i := 0; i < 16; i++ {
		r *= 0.1
		ad.RecordProgress(r)
	}
	st := ad.Stats()
	if !st.Stage1Ran {
		t.Fatal("stage 1 never ran")
	}
	if st.Stage2Ran {
		t.Errorf("stage 2 ran for a nearly-done loop (predicted total %d)", st.PredictedTotal)
	}
	if st.Converted {
		t.Error("conversion happened for a nearly-done loop")
	}
}

func TestAdaptiveLongLoopConvertsBanded(t *testing.T) {
	preds := predictors(t)
	m := genCSR(t, matgen.FamBanded, 4000, 7)
	// Fake clock: the overhead assertions below are exact, not "> 0".
	clk := timing.NewFakeClock()
	clk.SetAutoStep(time.Millisecond)
	cfg := core.DefaultConfig()
	cfg.Clock = clk
	ad := core.NewAdaptive(m, 1e-8, preds, cfg, false)
	// Slow convergence: 0.995x per iteration needs ~6600 more iterations.
	r := 1.0
	for i := 0; i < 20; i++ {
		r *= 0.995
		ad.RecordProgress(r)
	}
	st := ad.Stats()
	if !st.Stage1Ran || !st.Stage2Ran {
		t.Fatalf("pipeline did not complete: %+v", st)
	}
	if st.PredictedTotal < 1000 {
		t.Errorf("predicted total %d, want >> 15", st.PredictedTotal)
	}
	if !st.Converted || st.Format == sparse.FmtCSR {
		t.Errorf("banded long loop did not convert: decision %+v", st.Decision)
	}
	// SpMV must still compute correctly after conversion.
	rows, cols := ad.Dims()
	x := make([]float64, cols)
	for i := range x {
		x[i] = 1
	}
	y := make([]float64, rows)
	ad.SpMV(y, x)
	want := make([]float64, rows)
	m.SpMV(want, x)
	for i := range y {
		if math.Abs(y[i]-want[i]) > 1e-9*(1+math.Abs(want[i])) {
			t.Fatalf("post-conversion SpMV differs at %d: %g vs %g", i, y[i], want[i])
		}
	}
	// Four timed regions (stage-1 predict, features, decide, convert) at
	// 1ms of scripted clock each.
	if got := ad.OverheadSeconds(); got != 0.004 {
		t.Errorf("OverheadSeconds = %g, want exactly 0.004", got)
	}
}

func TestAdaptivePipelineRunsOnce(t *testing.T) {
	preds := predictors(t)
	m := genCSR(t, matgen.FamBanded, 2000, 8)
	clk := timing.NewFakeClock()
	clk.SetAutoStep(time.Millisecond)
	cfg := core.DefaultConfig()
	cfg.Clock = clk
	ad := core.NewAdaptive(m, 1e-8, preds, cfg, false)
	r := 1.0
	for i := 0; i < 100; i++ {
		r *= 0.995
		ad.RecordProgress(r)
	}
	st := ad.Stats()
	if st.Iterations != 100 {
		t.Errorf("iterations %d", st.Iterations)
	}
	// Under the fake clock a single pipeline run charges exactly one 1ms
	// region to feature extraction; a re-run would double it.
	if st.FeatureSeconds != 0.001 {
		t.Errorf("FeatureSeconds = %g, want exactly 0.001", st.FeatureSeconds)
	}
	for i := 0; i < 50; i++ {
		ad.RecordProgress(r)
	}
	if ad.Stats().FeatureSeconds != 0.001 {
		t.Error("pipeline ran more than once")
	}
}

func TestAdaptiveNilPredictorsIsSafe(t *testing.T) {
	m := genCSR(t, matgen.FamBanded, 1000, 9)
	ad := core.NewAdaptive(m, 1e-8, nil, core.DefaultConfig(), true)
	r := 1.0
	for i := 0; i < 30; i++ {
		r *= 0.99
		ad.RecordProgress(r)
	}
	st := ad.Stats()
	if st.Stage2Ran || st.Converted {
		t.Errorf("nil predictors ran stage 2: %+v", st)
	}
}

func TestAdaptiveInsideRealSolver(t *testing.T) {
	// End-to-end: CG on an SPD stencil through the adaptive wrapper, with a
	// tight tolerance so the loop is long enough for conversion. The
	// solution must match the fixed-CSR run.
	preds := predictors(t)
	m, err := matgen.Stencil2D(60) // 3600 rows, long CG
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(10))
	n, _ := m.Dims()
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	opt := apps.DefaultSolveOptions()
	opt.Tol = 1e-10

	ref, err := apps.CG(apps.Ser(m), b, opt, nil)
	if err != nil {
		t.Fatal(err)
	}
	// The CG progress indicator is absolute ||r||; the tolerance given to
	// the tripcount predictor must be on the same scale.
	tol := opt.Tol * vecNorm(b)
	ad2 := core.NewAdaptive(m, tol, preds, core.DefaultConfig(), false)
	res, err := apps.CG(ad2, b, opt, func(it int, p float64) { ad2.RecordProgress(p) })
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("adaptive CG did not converge")
	}
	if d := res.Iterations - ref.Iterations; d < -2 || d > 2 {
		t.Errorf("adaptive CG took %d iterations vs %d", res.Iterations, ref.Iterations)
	}
	st := ad2.Stats()
	if !st.Stage1Ran {
		t.Error("stage 1 never ran inside CG")
	}
	for i := range res.X {
		if math.Abs(res.X[i]-ref.X[i]) > 1e-6 {
			t.Fatalf("solutions differ at %d", i)
		}
	}
}

func vecNorm(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}

func TestDefaultConfigMatchesPaper(t *testing.T) {
	cfg := core.DefaultConfig()
	if cfg.K != 15 || cfg.TH != 15 {
		t.Errorf("K=%d TH=%d, paper uses 15/15", cfg.K, cfg.TH)
	}
}

func TestDecideCostsJDS(t *testing.T) {
	// JDS is universal (no fill limit), so every Decide must price it —
	// the "participates in selection" half of wiring a new format in.
	preds := predictors(t)
	m := genCSR(t, matgen.FamPowerLaw, 3000, 7)
	fs := features.Extract(m)
	blocks := features.CountBlocks(m, sparse.DefaultLimits.BSRBlockSize)
	d := preds.Decide(fs, blocks, 10000, sparse.DefaultLimits, 0.1)
	if _, ok := d.PredictedCost[sparse.FmtJDS]; !ok {
		t.Fatal("JDS missing from Decide's cost table")
	}
}

func TestJDSChoosableByOracleOnSkewedMidLoop(t *testing.T) {
	// With the model oracle's true costs, a skewed (power-law) matrix and a
	// mid-length loop should prefer JDS: it runs near CSR5 speed but costs
	// about a tenth of CSR5's conversion, so there is a remaining-iteration
	// band where the cheaper conversion wins the T_affected comparison.
	o := timing.NewModelOracle()
	o.Noise = 0
	m := genCSR(t, matgen.FamPowerLaw, 4000, 8)
	csrTime, ok := o.SpMVTime(m, sparse.FmtCSR)
	if !ok || csrTime <= 0 {
		t.Fatal("no CSR baseline time")
	}
	conv := map[sparse.Format]float64{}
	spmv := map[sparse.Format]float64{}
	for _, f := range sparse.AllFormats {
		st, ok1 := o.SpMVTime(m, f)
		ct, ok2 := o.ConvertTime(m, f)
		if ok1 && ok2 {
			spmv[f] = st / csrTime
			conv[f] = ct / csrTime
		}
	}
	if _, ok := spmv[sparse.FmtJDS]; !ok {
		t.Fatal("oracle did not cost JDS")
	}
	chosen := false
	for _, remaining := range []float64{20, 50, 100, 200, 500, 1000, 2000} {
		if core.OracleDecide(conv, spmv, remaining) == sparse.FmtJDS {
			chosen = true
			break
		}
	}
	if !chosen {
		t.Errorf("JDS never optimal across the remaining-iteration sweep: spmv=%v conv=%v",
			spmv[sparse.FmtJDS], conv[sparse.FmtJDS])
	}
}
