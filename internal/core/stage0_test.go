package core_test

import (
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/matgen"
	"repro/internal/obs"
	"repro/internal/sparse"
	"repro/internal/timing"
)

// mustCSR builds a small CSR directly, for exact-value feature tests.
func mustCSR(t *testing.T, rows, cols int, ptr []int, col []int32, data []float64) *sparse.CSR {
	t.Helper()
	m, err := sparse.NewCSR(rows, cols, ptr, col, data)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestExtractCheapExactValues(t *testing.T) {
	t.Run("identity", func(t *testing.T) {
		// 3x3 identity: full diagonal, perfectly regular rows.
		m := mustCSR(t, 3, 3, []int{0, 1, 2, 3}, []int32{0, 1, 2}, []float64{1, 1, 1})
		cf := core.ExtractCheap(m)
		if !approx(cf.Density, 3.0/9.0) {
			t.Errorf("density = %g, want 1/3", cf.Density)
		}
		if !approx(cf.RowCV, 0) {
			t.Errorf("row CV = %g, want 0 (all rows length 1)", cf.RowCV)
		}
		if !approx(cf.DiagFrac, 1) {
			t.Errorf("diag frac = %g, want 1", cf.DiagFrac)
		}
	})

	t.Run("off-diagonal-irregular", func(t *testing.T) {
		// 3x4, row lengths 1/2/3, no main-diagonal slot occupied:
		//   row 0: col 3;  row 1: cols 0,2;  row 2: cols 0,1,3.
		m := mustCSR(t, 3, 4, []int{0, 1, 3, 6},
			[]int32{3, 0, 2, 0, 1, 3}, []float64{1, 1, 1, 1, 1, 1})
		cf := core.ExtractCheap(m)
		if !approx(cf.Density, 6.0/12.0) {
			t.Errorf("density = %g, want 1/2", cf.Density)
		}
		// Lengths 1,2,3: mean 2, variance 2/3, CV = sqrt(2/3)/2.
		want := 0.40824829046386296
		if !approx(cf.RowCV, want) {
			t.Errorf("row CV = %g, want %g", cf.RowCV, want)
		}
		if !approx(cf.DiagFrac, 0) {
			t.Errorf("diag frac = %g, want 0", cf.DiagFrac)
		}
	})

	t.Run("empty", func(t *testing.T) {
		m := mustCSR(t, 2, 2, []int{0, 0, 0}, nil, nil)
		if cf := core.ExtractCheap(m); cf != (core.CheapFeatures{}) {
			t.Errorf("empty matrix features = %+v, want zero", cf)
		}
	})
}

func TestObviousStayBands(t *testing.T) {
	s := core.DefaultStage0()
	in := core.CheapFeatures{Density: 0.01, RowCV: 0.8, DiagFrac: 0.1}
	cases := []struct {
		name string
		cf   core.CheapFeatures
		want bool
	}{
		{"dead-band", in, true},
		{"diag-heavy", core.CheapFeatures{Density: 0.01, RowCV: 0.8, DiagFrac: 0.9}, false},
		{"too-regular", core.CheapFeatures{Density: 0.01, RowCV: 0.1, DiagFrac: 0.1}, false},
		{"too-skewed", core.CheapFeatures{Density: 0.01, RowCV: 2.5, DiagFrac: 0.1}, false},
		{"too-dense", core.CheapFeatures{Density: 0.5, RowCV: 0.8, DiagFrac: 0.1}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := s.ObviousStay(tc.cf); got != tc.want {
				t.Errorf("ObviousStay(%+v) = %v, want %v", tc.cf, got, tc.want)
			}
		})
	}
	// The zero value (and any disabled config) never short-circuits, even on
	// a feature triple squarely inside the default bands.
	if (core.Stage0{}).ObviousStay(in) {
		t.Error("disabled classifier claimed an obvious stay")
	}
}

// TestStage0SkipPipeline replays the pipeline with the classifier tuned
// (from the matrix's own cheap features) to fire, and asserts the skip is
// visible everywhere it should be: stats, the journaled trace, its Render,
// and the clock arithmetic — stage 0 costs exactly one timed region and
// stage 2 costs nothing.
func TestStage0SkipPipeline(t *testing.T) {
	preds := predictors(t)
	clk := timing.NewFakeClock()
	clk.SetAutoStep(time.Millisecond)
	journal := obs.NewJournal(0)
	m := genCSR(t, matgen.FamBanded, 4000, 7)

	// Bands built around the matrix's own features, so the verdict is
	// "obviously stay" by construction.
	cf := core.ExtractCheap(m)
	cfg := traceConfig(clk, journal)
	cfg.Stage0 = core.Stage0{
		Enabled:     true,
		MaxDiagFrac: cf.DiagFrac + 1,
		MinCV:       cf.RowCV - 0.01,
		MaxCV:       cf.RowCV + 0.01,
		MaxDensity:  cf.Density + 1,
	}
	ad := core.NewAdaptive(m, 1e-8, preds, cfg, false)
	driveLoop(ad, 20, 1, 0.995)

	st := ad.Stats()
	if !st.Stage0Skip || st.Stage2Ran || st.Converted {
		t.Fatalf("want stage0 skip without stage 2: %+v", st)
	}
	if st.Format != sparse.FmtCSR {
		t.Errorf("format = %v, want CSR", st.Format)
	}
	// Scripted costs: stage 1 is one timed region (1ms), stage 0 another
	// (1ms); feature extraction and conversion never ran.
	if !approx(st.PredictSeconds, 0.002) || !approx(st.PaidSeconds, 0.002) {
		t.Errorf("predict/paid = %g/%g, want 0.002/0.002", st.PredictSeconds, st.PaidSeconds)
	}
	if st.FeatureSeconds != 0 || st.ConvertSeconds != 0 {
		t.Errorf("feature/convert = %g/%g, want 0/0", st.FeatureSeconds, st.ConvertSeconds)
	}

	tr := fetchTrace(t, ad, journal)
	if !tr.Stage0Skip || tr.Stage2Ran {
		t.Fatalf("trace: stage0_skip=%v stage2_ran=%v, want true/false", tr.Stage0Skip, tr.Stage2Ran)
	}
	if tr.Chosen != sparse.FmtCSR.String() {
		t.Errorf("trace chose %q, want csr", tr.Chosen)
	}
	if out := tr.Render(); !strings.Contains(out, "stage0: structural classifier kept CSR") {
		t.Errorf("Render missing the stage-0 line:\n%s", out)
	}
}

// TestStage0FallThrough forces the classifier to answer "unsure" (an
// impossible density band) and asserts the pipeline proceeds to a normal
// stage-2 conversion — with the extra stage-0 region visible in the
// overhead accounting.
func TestStage0FallThrough(t *testing.T) {
	preds := predictors(t)
	clk := timing.NewFakeClock()
	clk.SetAutoStep(time.Millisecond)
	journal := obs.NewJournal(0)
	cfg := traceConfig(clk, journal)
	cfg.Stage0 = core.DefaultStage0()
	cfg.Stage0.MaxDensity = 0 // density < 0 is impossible: never skip
	m := genCSR(t, matgen.FamBanded, 4000, 7)
	ad := core.NewAdaptive(m, 1e-8, preds, cfg, false)
	driveLoop(ad, 20, 1, 0.995)

	st := ad.Stats()
	if st.Stage0Skip {
		t.Fatal("stage 0 skipped despite an impossible band")
	}
	if !st.Stage2Ran || !st.Converted {
		t.Fatalf("pipeline did not fall through to a conversion: %+v", st.Decision)
	}
	tr := fetchTrace(t, ad, journal)
	if tr.Stage0Skip {
		t.Error("trace claims stage0_skip on the fall-through path")
	}
	// Overhead gains exactly the one extra stage-0 region vs. the classic
	// replay: stage1 1 + stage0 1 + decide 1 (predict) + feature 1 + convert 1.
	if !approx(st.PredictSeconds, 0.003) {
		t.Errorf("predict seconds = %g, want 0.003 (stage1 + stage0 + decide)", st.PredictSeconds)
	}
	if !approx(tr.Ledger.OverheadSeconds, 0.005) {
		t.Errorf("ledger overhead = %g, want 0.005", tr.Ledger.OverheadSeconds)
	}
}
