package core

import (
	"math"
	"sort"

	"repro/internal/sparse"
)

// This file implements the stage-0 structural classifier: a near-zero-cost
// filter in front of the stage-2 cost model, in the spirit of Elafrou et
// al.'s lightweight feature-based format classifiers (arXiv:1511.02494).
// Stage 2 pays a full Table I feature extraction (several passes over the
// CSR arrays) plus model inference; for a large class of matrices the
// outcome is a foregone conclusion — nothing about their structure lets any
// alternative format beat CSR — and stage 0 recognizes them from three
// features computable in one cheap pass: the density band, the row-length
// coefficient of variation, and the main-diagonal occupancy fraction.
//
// The classifier is deliberately one-sided: it only ever answers "obviously
// stay on CSR" (skipping stage 2 entirely, recorded in the decision trace as
// stage0_skip) or "unsure" (fall through to stage 2). It never picks a
// non-CSR format on its own — that remains the cost model's job, because
// converting is the risky direction the paper's overhead accounting exists
// to police.

// Stage0 configures the structural classifier. The zero value is disabled;
// DefaultStage0 returns an enabled configuration with conservative bands.
type Stage0 struct {
	// Enabled turns the classifier on.
	Enabled bool
	// MaxDiagFrac is the main-diagonal occupancy fraction (occupied main
	// diagonal slots / rows) below which DIA-family formats are considered
	// out of the running. A matrix with a dense main diagonal usually has
	// more diagonal structure nearby, so it falls through to stage 2.
	MaxDiagFrac float64
	// MinCV and MaxCV bound the row-length coefficient-of-variation band in
	// which neither the regular-row formats (ELL/SELL: want low CV) nor the
	// skew-exploiting ones (JDS/HYB/CSR5: want high CV or heavy tails) have
	// an edge over CSR.
	MinCV float64
	// MaxCV — see MinCV.
	MaxCV float64
	// MaxDensity bounds the density band: above it the matrix is dense
	// enough that blocked/regular layouts may pay, so stage 2 must judge.
	MaxDensity float64
}

// DefaultStage0 returns the enabled classifier with its conservative
// default bands: skip stage 2 only when the matrix has no meaningful
// diagonal structure (< 30% main-diagonal occupancy), mid-band row
// irregularity (CV in [0.4, 1.6] — too ragged for ELL padding, not skewed
// enough for JDS), and low density (< 25%).
func DefaultStage0() Stage0 {
	return Stage0{
		Enabled:     true,
		MaxDiagFrac: 0.30,
		MinCV:       0.4,
		MaxCV:       1.6,
		MaxDensity:  0.25,
	}
}

// CheapFeatures is the stage-0 feature triple. Extraction is one O(rows)
// pass over the row-pointer array plus one binary search per row for the
// diagonal — orders of magnitude cheaper than features.Extract, which is the
// point: stage 0 must cost less than the decision it saves.
type CheapFeatures struct {
	// Density is nnz / (rows * cols).
	Density float64
	// RowCV is the coefficient of variation (stddev / mean) of the
	// per-row nonzero counts.
	RowCV float64
	// DiagFrac is the fraction of rows whose main-diagonal slot is
	// occupied (min(rows, cols) is the denominator).
	DiagFrac float64
}

// ExtractCheap computes the stage-0 features of a CSR matrix.
func ExtractCheap(a *sparse.CSR) CheapFeatures {
	rows, cols := a.Dims()
	nnz := a.NNZ()
	var cf CheapFeatures
	if rows == 0 || cols == 0 || nnz == 0 {
		return cf
	}
	cf.Density = float64(nnz) / (float64(rows) * float64(cols))

	var sum, sumSq float64
	diagSlots := rows
	if cols < diagSlots {
		diagSlots = cols
	}
	diagHits := 0
	for i := 0; i < rows; i++ {
		lo, hi := a.Ptr[i], a.Ptr[i+1]
		rd := float64(hi - lo)
		sum += rd
		sumSq += rd * rd
		if i < diagSlots {
			// Column indices are sorted within a row; binary-search the
			// main-diagonal slot.
			row := a.Col[lo:hi]
			k := sort.Search(len(row), func(k int) bool { return int(row[k]) >= i })
			if k < len(row) && int(row[k]) == i {
				diagHits++
			}
		}
	}
	mean := sum / float64(rows)
	if mean > 0 {
		variance := sumSq/float64(rows) - mean*mean
		if variance < 0 {
			variance = 0
		}
		cf.RowCV = math.Sqrt(variance) / mean
	}
	if diagSlots > 0 {
		cf.DiagFrac = float64(diagHits) / float64(diagSlots)
	}
	return cf
}

// ObviousStay reports whether the classifier is confident no alternative
// format can beat CSR for a matrix with these features: no diagonal
// structure worth DIA, row irregularity in the dead band where neither
// padding-based nor skew-exploiting layouts win, and density too low for
// blocked layouts to matter.
func (s Stage0) ObviousStay(cf CheapFeatures) bool {
	if !s.Enabled {
		return false
	}
	return cf.DiagFrac < s.MaxDiagFrac &&
		cf.RowCV >= s.MinCV && cf.RowCV <= s.MaxCV &&
		cf.Density < s.MaxDensity
}
