package core

import (
	"sync"

	"repro/internal/obs"
	"repro/internal/sparse"
)

// SafeAdaptive makes an Adaptive usable from multiple goroutines. Adaptive
// itself mirrors a single solver loop and is documented as single-goroutine;
// a long-lived service that shares one matrix handle across concurrent
// requests needs the stronger contract. SafeAdaptive provides it by
// serializing every access behind one mutex: SpMV calls on the same handle
// never overlap (each SpMV is internally goroutine-parallel already, so
// serializing requests costs little throughput), and the lazy-and-light
// pipeline still runs exactly once, no matter how many goroutines feed
// progress concurrently.
//
// SafeAdaptive satisfies the same Operator contract as Adaptive, so it
// drops into the solvers unchanged.
type SafeAdaptive struct {
	mu sync.Mutex
	ad *Adaptive
}

// NewSafeAdaptive wraps an existing Adaptive. The caller must not keep
// using the inner Adaptive directly afterwards.
func NewSafeAdaptive(ad *Adaptive) *SafeAdaptive {
	return &SafeAdaptive{ad: ad}
}

// SpMV computes y = A*x under the handle lock.
func (s *SafeAdaptive) SpMV(y, x []float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ad.SpMV(y, x)
}

// SpMM computes k blocked products Y = A*X under the handle lock. X and Y
// are row-major panels (row j occupies x[j*k : j*k+k]).
func (s *SafeAdaptive) SpMM(y, x []float64, k int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ad.SpMM(y, x, k)
}

// Dims returns the matrix dimensions.
func (s *SafeAdaptive) Dims() (int, int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ad.Dims()
}

// RecordProgress feeds one loop iteration's progress indicator. The K-th
// call (across all goroutines) triggers the selection pipeline while the
// lock is held, so concurrent SpMV callers observe the format change
// atomically.
func (s *SafeAdaptive) RecordProgress(v float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ad.RecordProgress(v)
}

// SwapPoint gives the wrapper a safe instant to install the result of a
// background stage-2 run. The handle lock is held across the swap, so
// concurrent SpMV callers observe the format change atomically — never a
// torn matrix.
func (s *SafeAdaptive) SwapPoint() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ad.SwapPoint()
}

// WaitPending blocks until an in-flight background stage-2 job has been
// adopted, reporting whether there was one. The handle lock is NOT held
// while waiting (only across the adoption), so concurrent SpMV traffic
// keeps flowing while the background job runs.
func (s *SafeAdaptive) WaitPending() bool {
	s.mu.Lock()
	j := s.ad.pending
	s.mu.Unlock()
	if j == nil {
		return false
	}
	<-j.done
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ad.adoptPending()
	return true
}

// Close abandons any in-flight background stage-2 job without blocking.
func (s *SafeAdaptive) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ad.Close()
}

// Stats returns a copy of the wrapper's bookkeeping.
func (s *SafeAdaptive) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ad.Stats()
}

// Format returns the format SpMV currently runs on.
func (s *SafeAdaptive) Format() sparse.Format {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ad.Format()
}

// SetSpanParent installs the request-scoped span context the selector's
// stage spans are emitted under, under the handle lock. Request handlers
// set it at admission so pipeline work triggered by their traffic is
// attributed to their trace.
func (s *SafeAdaptive) SetSpanParent(sc obs.SpanContext) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ad.SetSpanParent(sc)
}

// SetPredictors hot-swaps the stage-2 model bundle under the handle lock.
// A handle whose pipeline has not fired yet decides with the new bundle;
// one that already decided is unaffected (decisions are final per handle).
func (s *SafeAdaptive) SetPredictors(p *Predictors) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ad.SetPredictors(p)
}

// ModelGeneration reports the generation of the installed bundle, 0 when
// none is installed.
func (s *SafeAdaptive) ModelGeneration() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ad.ModelGeneration()
}

// OverheadSeconds is the total measured selector overhead so far.
func (s *SafeAdaptive) OverheadSeconds() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ad.OverheadSeconds()
}

// TraceID returns the journal ID of the wrapper's decision trace, with
// ok=false before the pipeline has run or when no journal is configured.
func (s *SafeAdaptive) TraceID() (uint64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ad.TraceID()
}
