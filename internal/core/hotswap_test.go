package core_test

import (
	"math"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/matgen"
)

// TestHotSwapRaceHammer drives SafeAdaptive SpMV/solve-style traffic from
// many goroutines while another goroutine hot-swaps predictor bundles with
// strictly increasing generations mid-flight. Under -race this is the
// retrainer's concurrency contract: no torn reads of the bundle pointer,
// and every reader observes a monotonically non-decreasing generation.
func TestHotSwapRaceHammer(t *testing.T) {
	preds := predictors(t)
	m := genCSR(t, matgen.FamBanded, 1500, 11)
	ad := core.NewAdaptive(m, 1e-8, preds, core.DefaultConfig(), false)
	sa := core.NewSafeAdaptive(ad)
	rows, cols := sa.Dims()

	const (
		readers     = 6
		perReader   = 60
		generations = 40
	)
	var wg sync.WaitGroup
	var swapped atomic.Int64

	// Swapper: publish clone after clone, bumping the generation each time,
	// exactly as the retrain loop's SetPredictors walk does.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for g := int64(1); g <= generations; g++ {
			p := preds.Clone()
			p.Generation = g
			sa.SetPredictors(p)
			swapped.Store(g)
		}
	}()

	wg.Add(readers)
	for w := 0; w < readers; w++ {
		go func(w int) {
			defer wg.Done()
			x := make([]float64, cols)
			y := make([]float64, rows)
			for i := range x {
				x[i] = 1
			}
			r := 1.0
			last := int64(-1)
			for i := 0; i < perReader; i++ {
				sa.SpMV(y, x)
				r *= 0.995
				sa.RecordProgress(r)
				g := sa.ModelGeneration()
				if g < last {
					t.Errorf("worker %d saw generation go backwards: %d after %d", w, g, last)
					return
				}
				last = g
				_ = sa.Stats()
			}
		}(w)
	}
	wg.Wait()

	if got := sa.ModelGeneration(); got != generations {
		t.Errorf("final generation = %d, want %d (last published)", got, generations)
	}
	if swapped.Load() != generations {
		t.Fatalf("swapper finished %d generations, want %d", swapped.Load(), generations)
	}

	// The matrix still multiplies correctly whatever format the hammered
	// pipeline landed on.
	x := make([]float64, cols)
	for i := range x {
		x[i] = 1
	}
	got := make([]float64, rows)
	want := make([]float64, rows)
	sa.SpMV(got, x)
	m.SpMV(want, x)
	for i := range got {
		if math.Abs(got[i]-want[i]) > 1e-12*(1+math.Abs(want[i])) {
			t.Fatalf("SpMV result torn at row %d after hot-swaps", i)
		}
	}
}

// TestHotSwapAsyncPipeline races bundle swaps against the background
// stage-2 worker: the async job must keep using the bundle it captured at
// launch (never a torn mix), and the trace's recorded generation must be
// one that was actually published.
func TestHotSwapAsyncPipeline(t *testing.T) {
	preds := predictors(t)
	m := genCSR(t, matgen.FamBanded, 1500, 13)
	cfg := core.DefaultConfig()
	cfg.Async = true
	ad := core.NewAdaptive(m, 1e-8, preds, cfg, false)
	sa := core.NewSafeAdaptive(ad)
	rows, cols := sa.Dims()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for g := int64(1); ; g++ {
			select {
			case <-stop:
				return
			default:
			}
			p := preds.Clone()
			p.Generation = g
			sa.SetPredictors(p)
		}
	}()

	x := make([]float64, cols)
	y := make([]float64, rows)
	for i := range x {
		x[i] = 1
	}
	r := 1.0
	for i := 0; i < 60; i++ {
		sa.SpMV(y, x)
		r *= 0.995
		sa.RecordProgress(r)
	}
	sa.WaitPending()
	close(stop)
	wg.Wait()

	st := sa.Stats()
	if !st.Stage1Ran {
		t.Fatal("pipeline never fired under swap pressure")
	}
	// Exact multiply still holds after the async adoption.
	got := make([]float64, rows)
	want := make([]float64, rows)
	sa.SpMV(got, x)
	m.SpMV(want, x)
	for i := range got {
		if math.Abs(got[i]-want[i]) > 1e-12*(1+math.Abs(want[i])) {
			t.Fatalf("async-adopted SpMV differs at row %d", i)
		}
	}
}
