// Package core implements the paper's contribution: overhead-conscious
// sparse-format selection. It combines
//
//   - a bundle of regression models (Predictors) that predict, from matrix
//     features, the normalized conversion time CSR->f and the normalized
//     SpMV time of every format f (both normalized by the matrix's CSR SpMV
//     time, the trick §IV-C credits with canceling environment bias), and
//   - the two-stage lazy-and-light scheme (Adaptive): a near-free ARIMA
//     tripcount predictor observes the first K progress indicators of the
//     surrounding convergence loop and gates the expensive stage-2
//     feature-extraction + cost-benefit decision behind the TH threshold.
//
// The stage-2 decision minimizes Tconvert + Tspmv(f) * remaining-iterations,
// which is the paper's T_affected with the already-sunk T_predict removed.
package core

import (
	"fmt"
	"math"

	"repro/internal/arima"
	"repro/internal/convcache"
	"repro/internal/features"
	"repro/internal/gbt"
	"repro/internal/obs"
	"repro/internal/sparse"
	"repro/internal/timing"
)

// Config holds the selector's knobs. The defaults (K = TH = 15) are the
// values the paper settled on empirically.
type Config struct {
	// K is the number of loop iterations observed before the stage-1
	// prediction runs ("lazy": short loops never pay anything).
	K int
	// TH is the minimum predicted number of REMAINING iterations for
	// stage 2 to be worth invoking.
	TH int
	// Margin is the risk-control threshold of the stage-2 decision: a
	// conversion happens only when its predicted total cost undercuts
	// staying on CSR by at least this fraction. Format benefits on real
	// hardware can be thin relative to the predictors' error, and without
	// the margin, noise flips marginal decisions into slowdowns — the
	// "maximize speedups while avoiding large slowdowns" goal of §IV-B.
	Margin float64
	// GateOverheadFactor makes the stage-1 gate overhead-conscious about
	// stage 2 itself: stage 2 runs only when the predicted remaining
	// iterations exceed both TH and GateOverheadFactor x the estimated
	// feature-extraction cost (in SpMV calls). The paper's fixed TH = 15
	// assumes extraction costs 2-4 SpMV calls; when a platform's ratio is
	// worse, a fixed threshold lets the predictor's own overhead cause the
	// very slowdowns it exists to prevent (the §III-B chicken-egg dilemma).
	GateOverheadFactor float64
	// FeatureSecondsPerNNZ estimates extraction cost before paying it
	// (used with the wrapper's self-measured SpMV time to compute the
	// gate threshold). The default is calibrated to this repo's parallel
	// extractor.
	FeatureSecondsPerNNZ float64
	// PredictFixedSeconds is the size-independent part of the stage-2
	// overhead estimate (model inference, allocations, cold caches). On
	// tiny matrices whose whole solve lasts milliseconds this fixed cost
	// is what dominates, so the gate must know about it.
	PredictFixedSeconds float64
	// Async moves stage 2 off the solver's critical path: when the gate
	// opens, feature extraction, model inference and the conversion run on a
	// background worker (parallel.Team.Go) while the solver keeps iterating
	// on the current format; the result is swapped in atomically at the next
	// iteration boundary (Adaptive.SwapPoint / RecordProgress). The
	// cost-benefit argmin then charges each candidate only the conversion
	// time that cannot be hidden behind the remaining iterations — the
	// effective T_convert becomes max(0, T_convert − T_overlap) — which
	// makes conversion profitable for shorter loops than the paper's inline
	// model allows. The decision trace splits the overhead into paid vs
	// hidden seconds accordingly.
	Async bool
	// Stage0 configures the near-zero-cost structural classifier in front
	// of stage 2 (see stage0.go): obvious keep-CSR matrices skip feature
	// extraction and model inference entirely, recorded in the trace as
	// stage0_skip. The zero value disables it; DefaultStage0() enables it
	// with conservative bands.
	Stage0 Stage0
	// ConvCache, when non-nil, is the cross-handle conversion cache: stage 2
	// consults it before pricing candidates (a cached format's T_convert is
	// zero, which can flip a stay decision into a convert), adopts a
	// published matrix instead of converting on a hit — crediting the
	// publisher's conversion seconds as hidden overhead in the ledger — and
	// publishes its own conversion on a miss. CacheFingerprint and
	// CacheValues identify this wrapper's matrix in the cache (structure
	// hash and value digest); all three must be set for the cache to engage.
	ConvCache        *convcache.Cache
	CacheFingerprint string
	CacheValues      string
	// Lim bounds format conversions.
	Lim sparse.Limits
	// Tripcount configures the stage-1 ARIMA predictor.
	Tripcount arima.Tripcount
	// Clock supplies the timestamps the wrapper's self-measurements and the
	// overhead accounting are computed from; nil means the wall clock.
	// Injecting a timing.FakeClock makes every timing-gated decision (the
	// stage-2 overhead gate in particular) reproducible under any machine
	// load — the selector replay tests in replay_test.go rely on this.
	Clock timing.Clock
	// Journal, when non-nil, receives one obs.DecisionTrace per pipeline
	// run — stage-1 forecast, every gate inequality with both sides, the
	// per-format stage-2 predictions, and measured overheads — and the
	// wrapper keeps timing SpMV calls after the decision to maintain the
	// trace's live T_affected ledger (realized vs. predicted payoff).
	// nil (the default) disables tracing and the post-decision timing.
	Journal *obs.Journal
	// TraceLabel tags this wrapper's traces in the journal (e.g. the
	// server's matrix handle name).
	TraceLabel string
	// SpanSink, when non-nil, receives one completed obs.Span per selector
	// stage boundary — stage-1 tripcount prediction, stage-0 classify,
	// stage-2 feature extraction, decide, and conversion — parented under
	// the request span installed via Adaptive.SetSpanParent. The conversion
	// span carries the paid/hidden overhead split and the decision trace ID,
	// tying the distributed trace tree back to the journal's T_affected
	// ledger. nil (the default) disables span emission.
	SpanSink func(obs.Span)
}

// DefaultConfig mirrors the paper's empirical settings plus a 10% decision
// margin and the overhead-conscious gate factor.
func DefaultConfig() Config {
	return Config{
		K:                    15,
		TH:                   15,
		Margin:               0.10,
		GateOverheadFactor:   5,
		FeatureSecondsPerNNZ: 3e-9,
		PredictFixedSeconds:  300e-6,
		Lim:                  sparse.DefaultLimits,
		Tripcount:            arima.DefaultTripcount(),
	}
}

// Predictors is the trained stage-2 model bundle. ConvTime[f] predicts
// T_convert(CSR->f) / T_spmv(CSR); SpMVTime[f] predicts
// T_spmv(f) / T_spmv(CSR). CSR itself needs no models (its normalized SpMV
// time is 1 and conversion is free).
type Predictors struct {
	ConvTime map[sparse.Format]*gbt.Model
	SpMVTime map[sparse.Format]*gbt.Model
	// SpMMTime[f] predicts the per-column cost of a blocked multi-vector
	// product in format f, T_spmm(f, k)/(k · T_spmv(CSR)) — trained at a
	// reference k (trainer.SpMMRefK). Optional: bundles trained before the
	// SpMM menu existed leave it empty and the selector falls back to the
	// SpMV menu. CSR itself appears here (its blocked kernel is cheaper per
	// column than a lone SpMV, so its per-column cost is a learned quantity,
	// not the definitional 1).
	SpMMTime map[sparse.Format]*gbt.Model
	// Generation identifies the bundle's era: 0 for an offline-trained seed
	// bundle, incremented by the online retrainer on every accepted
	// hot-swap. Decision traces record the generation they were made with,
	// so regret can be attributed to a model era. A bundle is immutable
	// once published — the retrainer swaps whole bundles, never mutates.
	Generation int64
}

// Clone returns a new bundle sharing the (immutable) models, so a caller
// can replace some formats' models without mutating the published bundle.
func (p *Predictors) Clone() *Predictors {
	c := NewPredictors()
	if p == nil {
		return c
	}
	c.Generation = p.Generation
	for f, m := range p.ConvTime {
		c.ConvTime[f] = m
	}
	for f, m := range p.SpMVTime {
		c.SpMVTime[f] = m
	}
	for f, m := range p.SpMMTime {
		c.SpMMTime[f] = m
	}
	return c
}

// NewPredictors allocates an empty bundle.
func NewPredictors() *Predictors {
	return &Predictors{
		ConvTime: make(map[sparse.Format]*gbt.Model),
		SpMVTime: make(map[sparse.Format]*gbt.Model),
		SpMMTime: make(map[sparse.Format]*gbt.Model),
	}
}

// Validate checks that every non-CSR format has both models.
func (p *Predictors) Validate() error {
	for _, f := range sparse.AllFormats {
		if f == sparse.FmtCSR {
			continue
		}
		if p.ConvTime[f] == nil {
			return fmt.Errorf("core: missing conversion-time model for %v", f)
		}
		if p.SpMVTime[f] == nil {
			return fmt.Errorf("core: missing SpMV-time model for %v", f)
		}
	}
	return nil
}

// Decision is the outcome of a stage-2 cost-benefit evaluation.
type Decision struct {
	// Format is the chosen format (FmtCSR means "stay put").
	Format sparse.Format
	// PredictedCost maps each candidate format to its predicted
	// Tconv_norm + Tspmv_norm * remaining (in units of CSR SpMV calls);
	// invalid formats are absent.
	PredictedCost map[sparse.Format]float64
	// PredictedSpMV and PredictedConv are the raw (clamped) model outputs
	// the costs were assembled from: normalized SpMV time and normalized
	// conversion time per candidate format. CSR is present in PredictedSpMV
	// with its defining value 1 and in PredictedConv with 0. Kept so the
	// decision journal can show both regressors' verdicts, and so the
	// T_affected ledger can compare the chosen format's predicted per-call
	// time against what post-conversion SpMV calls actually measure.
	PredictedSpMV map[sparse.Format]float64
	PredictedConv map[sparse.Format]float64
	// Remaining is the iteration count the costs were evaluated against.
	Remaining float64
}

// formatValid applies the same storage-blowup limits the conversions
// enforce, computed from already-extracted features so stage 2 does not pay
// a second pass. BSR's block count at the conversion block size is the one
// quantity Table I lacks, so it is passed in separately.
func formatValid(f sparse.Format, s *features.Set, bsrBlocks int, lim sparse.Limits) bool {
	if s.NNZ == 0 {
		return true
	}
	switch f {
	case sparse.FmtDIA:
		return s.Ndiags*s.M <= lim.DIAFill*s.NNZ
	case sparse.FmtELL:
		return s.M*s.MaxRD <= lim.ELLFill*s.NNZ
	case sparse.FmtBSR:
		bs := float64(lim.BSRBlockSize)
		return float64(bsrBlocks)*bs*bs <= lim.BSRFill*s.NNZ
	default:
		return true
	}
}

// Decide runs the stage-2 cost-benefit analysis: for every valid format,
// predicted total cost over the remaining iterations (in CSR-SpMV units) is
// ConvTime_norm(f) + SpMVTime_norm(f) * remaining; staying on CSR costs
// exactly remaining. The argmin wins, but a conversion must additionally
// undercut staying by the margin fraction (risk control against prediction
// noise on marginal wins).
func (p *Predictors) Decide(s *features.Set, bsrBlocks int, remaining float64, lim sparse.Limits, margin float64) Decision {
	return p.DecideOverlap(s, bsrBlocks, remaining, 0, lim, margin)
}

// DecideOverlap is Decide with an overlap budget: overlap is how many
// CSR-SpMV-equivalents of conversion work can run concurrently with solver
// iterations still in flight (the async pipeline passes remaining — every
// iteration up to adoption can cover conversion time; the inline pipeline
// passes 0, reproducing the paper's model bit for bit). A hidden conversion
// does not stall the loop, but the iterations covering it still run at CSR
// speed (cost 1 each) and only the rest enjoy the converted format, so a
// candidate's cost becomes
//
//	max(0, conv − h) + h·1 + (remaining − h)·spmv,  h = min(conv, overlap, remaining)
//
// — the residual (non-hidden) conversion charge plus the split iteration
// bill. This is the paper's T_affected with the effective conversion cost
// shrunk to max(0, T_convert − T_overlap).
func (p *Predictors) DecideOverlap(s *features.Set, bsrBlocks int, remaining, overlap float64, lim sparse.Limits, margin float64) Decision {
	return p.DecideOverlapCached(s, bsrBlocks, remaining, overlap, lim, margin, nil)
}

// DecideOverlapCached is DecideOverlap with conversion-cache knowledge:
// formats present in cached have an already-published converted matrix for
// this exact (structure, values) pair, so their effective T_convert is zero
// — adoption is a map lookup. This is the cache changing the decision
// itself: a format whose conversion bill would not amortize over the
// remaining iterations becomes free and can win the argmin (the paper's
// overhead-conscious gate, with the overhead removed by an earlier tenant
// having paid it). nil cached means no cache, reproducing DecideOverlap.
func (p *Predictors) DecideOverlapCached(s *features.Set, bsrBlocks int, remaining, overlap float64, lim sparse.Limits, margin float64, cached map[sparse.Format]bool) Decision {
	x := s.Vector()
	d := Decision{
		Format:        sparse.FmtCSR,
		PredictedCost: map[sparse.Format]float64{sparse.FmtCSR: remaining},
		PredictedSpMV: map[sparse.Format]float64{sparse.FmtCSR: 1},
		PredictedConv: map[sparse.Format]float64{sparse.FmtCSR: 0},
		Remaining:     remaining,
	}
	best := remaining * (1 - margin)
	for _, f := range sparse.AllFormats {
		if f == sparse.FmtCSR {
			continue
		}
		if p.ConvTime[f] == nil || p.SpMVTime[f] == nil {
			continue
		}
		if !formatValid(f, s, bsrBlocks, lim) {
			continue
		}
		conv := p.ConvTime[f].Predict(x)
		spmv := p.SpMVTime[f].Predict(x)
		// Regression outputs can stray slightly negative near zero; clamp
		// so a bad extrapolation cannot fabricate negative cost.
		if conv < 0 {
			conv = 0
		}
		if spmv < 0 {
			spmv = 0
		}
		if cached[f] {
			conv = 0
		}
		cost := overlapCost(conv, spmv, remaining, overlap)
		d.PredictedCost[f] = cost
		d.PredictedSpMV[f] = spmv
		d.PredictedConv[f] = conv
		if cost < best {
			best = cost
			d.Format = f
		}
	}
	return d
}

// overlapCost is the overlap-aware candidate cost in CSR-SpMV units; see
// DecideOverlap for the derivation. With overlap = 0 it degenerates to the
// inline model conv + spmv·remaining exactly (h = 0 leaves both terms
// untouched, no floating-point rewriting).
func overlapCost(conv, spmv, remaining, overlap float64) float64 {
	h := conv
	if overlap < h {
		h = overlap
	}
	if remaining < h {
		h = remaining
	}
	return (conv - h) + h + (remaining-h)*spmv
}

// HasSpMMMenu reports whether the bundle carries blocked-SpMM cost models
// (at least CSR's own, the menu's baseline).
func (p *Predictors) HasSpMMMenu() bool {
	return p != nil && p.SpMMTime[sparse.FmtCSR] != nil
}

// DecideSpMM is the cost-benefit menu for SpMM-dominant handles: the
// workload is `remaining` blocked products of width k rather than lone
// SpMVs, so each candidate is billed conv + perColumn(f)·k·remaining and
// the stay-on-CSR baseline is CSR's own blocked per-column cost (not the
// definitional 1 — blocked CSR already amortizes matrix traffic). Formats
// in cached charge zero conversion, exactly like DecideOverlapCached. The
// overlap budget is in calls; iterations covering a hidden conversion run
// at blocked-CSR speed (see overlapCostScaled). Falls back to FmtCSR when
// the bundle predates SpMM models.
func (p *Predictors) DecideSpMM(s *features.Set, bsrBlocks, k int, remaining, overlap float64, lim sparse.Limits, margin float64, cached map[sparse.Format]bool) Decision {
	x := s.Vector()
	kk := float64(k)
	csrPerCall := kk // k lone SpMVs, when no model says better
	if m := p.SpMMTime[sparse.FmtCSR]; m != nil {
		if v := m.Predict(x); v > 0 {
			csrPerCall = v * kk
		}
	}
	d := Decision{
		Format:        sparse.FmtCSR,
		PredictedCost: map[sparse.Format]float64{sparse.FmtCSR: csrPerCall * remaining},
		PredictedSpMV: map[sparse.Format]float64{sparse.FmtCSR: csrPerCall},
		PredictedConv: map[sparse.Format]float64{sparse.FmtCSR: 0},
		Remaining:     remaining,
	}
	best := csrPerCall * remaining * (1 - margin)
	for _, f := range sparse.AllFormats {
		if f == sparse.FmtCSR {
			continue
		}
		if p.SpMMTime[f] == nil || p.ConvTime[f] == nil {
			continue
		}
		if !formatValid(f, s, bsrBlocks, lim) {
			continue
		}
		conv := p.ConvTime[f].Predict(x)
		perCol := p.SpMMTime[f].Predict(x)
		if conv < 0 {
			conv = 0
		}
		if perCol < 0 {
			perCol = 0
		}
		if cached[f] {
			conv = 0
		}
		perCall := perCol * kk
		cost := overlapCostScaled(conv, csrPerCall, perCall, remaining, overlap)
		d.PredictedCost[f] = cost
		d.PredictedSpMV[f] = perCall
		d.PredictedConv[f] = conv
		if cost < best {
			best = cost
			d.Format = f
		}
	}
	return d
}

// overlapCostScaled generalizes overlapCost to calls that do not cost 1
// CSR-SpMV unit each: oldPerCall is the per-call cost while still on CSR,
// newPerCall after conversion, conv the conversion bill, overlap the budget
// in calls. h calls elapse while the conversion hides (at most conv /
// oldPerCall of them fit inside the conversion window), each billed at old
// speed; the residual conversion time stalls; the rest run converted. With
// oldPerCall = 1 this is overlapCost exactly.
func overlapCostScaled(conv, oldPerCall, newPerCall, remaining, overlap float64) float64 {
	h := remaining
	if overlap < h {
		h = overlap
	}
	if oldPerCall > 0 {
		if c := conv / oldPerCall; c < h {
			h = c
		}
	}
	return (conv - h*oldPerCall) + h*oldPerCall + (remaining-h)*newPerCall
}

// OracleDecide is the oracle ("upper bound") variant of Decide used by the
// experiments: instead of model predictions it consumes the true normalized
// times. convNorm and spmvNorm map each valid format to its actual
// normalized cost (CSR must be present in spmvNorm with value 1).
func OracleDecide(convNorm, spmvNorm map[sparse.Format]float64, remaining float64) sparse.Format {
	best := sparse.FmtCSR
	bestCost := remaining
	for _, f := range sparse.AllFormats {
		if f == sparse.FmtCSR {
			continue
		}
		conv, ok1 := convNorm[f]
		spmv, ok2 := spmvNorm[f]
		if !ok1 || !ok2 {
			continue
		}
		cost := conv + spmv*remaining
		if cost < bestCost {
			bestCost = cost
			best = f
		}
	}
	return best
}

// OverheadObliviousDecide picks the format minimizing per-call SpMV time
// alone — the prior-work baseline the paper compares against.
func OverheadObliviousDecide(spmvNorm map[sparse.Format]float64) sparse.Format {
	best := sparse.FmtCSR
	bestCost := math.Inf(1)
	if v, ok := spmvNorm[sparse.FmtCSR]; ok {
		bestCost = v
	}
	for _, f := range sparse.AllFormats {
		v, ok := spmvNorm[f]
		if !ok {
			continue
		}
		if v < bestCost {
			bestCost = v
			best = f
		}
	}
	return best
}
