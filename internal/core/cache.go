package core

import (
	"repro/internal/convcache"
	"repro/internal/sparse"
)

// cacheKey builds this wrapper's conversion-cache key for format f from the
// identity configured at registration. The value digest is part of the key:
// the structure fingerprint alone would let two matrices with equal
// sparsity but different entries alias each other's converted values.
func cacheKeyFor(cfg *Config, f sparse.Format) convcache.Key {
	return convcache.Key{
		Fingerprint: cfg.CacheFingerprint,
		Values:      cfg.CacheValues,
		Format:      f,
	}
}

// cacheUsable reports whether the config carries enough identity to consult
// the conversion cache.
func cacheUsable(cfg *Config) bool {
	return cfg.ConvCache != nil && cfg.CacheFingerprint != "" && cfg.CacheValues != ""
}

// cachedFormats probes which candidate formats already have a published
// conversion for this exact matrix, using Has (which leaves the hit/miss
// counters alone — only an adoption counts as a hit). The result feeds
// DecideOverlapCached/DecideSpMM, where a cached format's T_convert is
// zero: the cache changes the decision, not just its cost.
func cachedFormats(cfg *Config) map[sparse.Format]bool {
	if !cacheUsable(cfg) {
		return nil
	}
	var m map[sparse.Format]bool
	for _, f := range sparse.AllFormats {
		if f == sparse.FmtCSR {
			continue
		}
		if cfg.ConvCache.Has(cacheKeyFor(cfg, f)) {
			if m == nil {
				m = make(map[sparse.Format]bool)
			}
			m[f] = true
		}
	}
	return m
}
