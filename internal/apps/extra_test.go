package apps

import (
	"math"
	"testing"

	"repro/internal/sparse"
)

func TestJacobiSolvesDominantSystem(t *testing.T) {
	a, b, _ := spdSystem(t, 150, 20)
	n, _ := a.Dims()
	diag := make([]float64, n)
	for i := 0; i < n; i++ {
		diag[i] = a.At(i, i)
	}
	opt := DefaultSolveOptions()
	opt.Tol = 1e-8
	opt.MaxIters = 100000
	res, err := Jacobi(Ser(a), diag, b, 1.0, opt, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("Jacobi did not converge (res %g after %d)", res.Residual, res.Iterations)
	}
	checkSolution(t, a, res.X, b, 1e-6, "Jacobi")
}

func TestJacobiValidation(t *testing.T) {
	a, b, _ := spdSystem(t, 10, 21)
	diag := make([]float64, 10)
	for i := range diag {
		diag[i] = a.At(i, i)
	}
	if _, err := Jacobi(Ser(a), diag[:5], b, 1.0, DefaultSolveOptions(), nil); err == nil {
		t.Error("short diag accepted")
	}
	if _, err := Jacobi(Ser(a), diag, b, 1.5, DefaultSolveOptions(), nil); err == nil {
		t.Error("omega > 1 accepted")
	}
	zeroDiag := make([]float64, 10)
	if _, err := Jacobi(Ser(a), zeroDiag, b, 1.0, DefaultSolveOptions(), nil); err == nil {
		t.Error("zero diagonal accepted")
	}
	if _, err := Jacobi(Ser(a), diag, make([]float64, 10), 1.0, DefaultSolveOptions(), nil); err != nil {
		t.Errorf("zero rhs: %v", err)
	}
}

func TestPowerMethodKnownEigenvalue(t *testing.T) {
	// Diagonal matrix: dominant eigenvalue is the largest diagonal entry.
	dense := make([]float64, 16)
	vals := []float64{1, 7, 3, 5}
	for i, v := range vals {
		dense[i*4+i] = v
	}
	a, err := sparse.FromDense(4, 4, dense)
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultSolveOptions()
	opt.Tol = 1e-12
	opt.MaxIters = 10000
	res, err := PowerMethod(Ser(a), opt, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("power method did not converge")
	}
	if math.Abs(res.Eigenvalue-7) > 1e-6 {
		t.Errorf("eigenvalue %g, want 7", res.Eigenvalue)
	}
	// Eigenvector concentrated on index 1.
	if math.Abs(math.Abs(res.X[1])-1) > 1e-4 {
		t.Errorf("eigenvector %v, want e_1", res.X)
	}
}

func TestPowerMethodOnSPD(t *testing.T) {
	a, _, _ := spdSystem(t, 120, 22)
	opt := DefaultSolveOptions()
	opt.Tol = 1e-10
	opt.MaxIters = 50000
	res, err := PowerMethod(Ser(a), opt, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("power method did not converge on SPD matrix")
	}
	// Verify A v ~ lambda v.
	n, _ := a.Dims()
	av := make([]float64, n)
	a.SpMV(av, res.X)
	for i := range av {
		if math.Abs(av[i]-res.Eigenvalue*res.X[i]) > 1e-4*(1+math.Abs(res.Eigenvalue)) {
			t.Fatalf("A v != lambda v at %d: %g vs %g", i, av[i], res.Eigenvalue*res.X[i])
		}
	}
}

func TestPowerMethodZeroMatrix(t *testing.T) {
	a, err := sparse.NewCSR(5, 5, make([]int, 6), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := PowerMethod(Ser(a), DefaultSolveOptions(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Eigenvalue != 0 {
		t.Errorf("zero matrix: converged=%v lambda=%g", res.Converged, res.Eigenvalue)
	}
}

func TestPowerMethodHookAndProgress(t *testing.T) {
	a, _, _ := spdSystem(t, 80, 23)
	count := 0
	res, err := PowerMethod(Ser(a), DefaultSolveOptions(), func(it int, p float64) { count++ })
	if err != nil {
		t.Fatal(err)
	}
	if count != res.Iterations || len(res.Progress) != res.Iterations {
		t.Errorf("hook %d, progress %d, iterations %d", count, len(res.Progress), res.Iterations)
	}
}
