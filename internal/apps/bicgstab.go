package apps

import (
	"fmt"
	"math"

	"repro/internal/vec"
)

// BiCGSTAB solves A x = b for general square A with the bi-conjugate
// gradient stabilized method (van der Vorst). Two SpMV calls per iteration;
// the progress indicator is ||r||_2.
func BiCGSTAB(op Operator, b []float64, opt SolveOptions, hook Hook) (Result, error) {
	n, err := squareDims(op)
	if err != nil {
		return Result{}, err
	}
	if err := opt.validate(); err != nil {
		return Result{}, err
	}
	if len(b) != n {
		return Result{}, fmt.Errorf("apps: rhs length %d for %d unknowns", len(b), n)
	}
	x := make([]float64, n)
	r := append([]float64(nil), b...)
	rhat := append([]float64(nil), b...) // shadow residual r^ = r0
	p := make([]float64, n)
	v := make([]float64, n)
	s := make([]float64, n)
	t := make([]float64, n)
	bnorm := vec.Nrm2(b)
	if bnorm == 0 {
		return Result{Converged: true, X: x}, nil
	}
	rho, alpha, omega := 1.0, 1.0, 1.0
	res := Result{}
	record := func(iter int, rnorm float64) {
		res.Iterations = iter
		res.Residual = rnorm
		res.Progress = append(res.Progress, rnorm)
		if hook != nil {
			hook(iter, rnorm)
		}
	}
	for iter := 1; iter <= opt.MaxIters; iter++ {
		if err := canceled(opt.Ctx); err != nil {
			res.X = x
			return res, fmt.Errorf("apps: BiCGSTAB canceled at iteration %d: %w", iter, err)
		}
		swapPoint(op)
		rhoNew := vec.Dot(rhat, r)
		if math.Abs(rhoNew) < 1e-300 {
			record(iter, vec.Nrm2(r))
			res.X = x
			return res, fmt.Errorf("apps: BiCGSTAB breakdown, rho = %g", rhoNew)
		}
		beta := (rhoNew / rho) * (alpha / omega)
		rho = rhoNew
		for i := range p {
			p[i] = r[i] + beta*(p[i]-omega*v[i])
		}
		op.SpMV(v, p)
		res.SpMVs++
		den := vec.Dot(rhat, v)
		if math.Abs(den) < 1e-300 {
			record(iter, vec.Nrm2(r))
			res.X = x
			return res, fmt.Errorf("apps: BiCGSTAB breakdown, rhat'v = %g", den)
		}
		alpha = rho / den
		for i := range s {
			s[i] = r[i] - alpha*v[i]
		}
		snorm := vec.Nrm2(s)
		if snorm <= opt.Tol*bnorm {
			vec.Axpy(alpha, p, x)
			record(iter, snorm)
			res.Converged = true
			res.X = x
			return res, nil
		}
		op.SpMV(t, s)
		res.SpMVs++
		tt := vec.Dot(t, t)
		if tt < 1e-300 {
			record(iter, snorm)
			res.X = x
			return res, fmt.Errorf("apps: BiCGSTAB breakdown, ||t|| = 0")
		}
		omega = vec.Dot(t, s) / tt
		if math.Abs(omega) < 1e-300 {
			record(iter, snorm)
			res.X = x
			return res, fmt.Errorf("apps: BiCGSTAB breakdown, omega = 0")
		}
		for i := range x {
			x[i] += alpha*p[i] + omega*s[i]
		}
		for i := range r {
			r[i] = s[i] - omega*t[i]
		}
		rnorm := vec.Nrm2(r)
		record(iter, rnorm)
		if rnorm <= opt.Tol*bnorm {
			res.Converged = true
			break
		}
	}
	res.X = x
	return res, nil
}
