// Package apps implements the four SpMV-based applications of the paper's
// evaluation — PageRank, CG, BiCGSTAB and GMRES — against a small Operator
// interface, so the same solver code runs on a fixed-format matrix or on the
// selector's adaptive wrapper. Every solver reports a per-iteration progress
// indicator through an optional hook; that indicator is exactly what the
// stage-1 tripcount predictor consumes.
package apps

import (
	"context"
	"fmt"

	"repro/internal/sparse"
)

// Operator is the matrix contract the solvers need: y = A*x plus the
// dimensions. sparse matrices and core.Adaptive both satisfy it.
type Operator interface {
	SpMV(y, x []float64)
	Dims() (rows, cols int)
}

// Hook observes one solver iteration: iter counts from 1, progress is the
// solver's convergence indicator at that iteration (residual norm or delta).
type Hook func(iter int, progress float64)

// SwapPointer is the optional Operator extension the adaptive wrapper
// implements: a solver calls SwapPoint once per iteration boundary — a
// point where none of its SpMV calls is in flight — giving the operator a
// safe instant to swap in a matrix format that finished converting in the
// background. Operators without background work simply don't implement it.
type SwapPointer interface {
	SwapPoint()
}

// swapPoint invokes op's SwapPoint hook when it has one. Every solver calls
// this at the top of its iteration loop.
func swapPoint(op Operator) {
	if sp, ok := op.(SwapPointer); ok {
		sp.SwapPoint()
	}
}

// Result summarizes a solver run.
type Result struct {
	// Iterations is the number of iterations executed.
	Iterations int
	// Converged reports whether the tolerance was met within MaxIters.
	Converged bool
	// Residual is the final progress indicator value.
	Residual float64
	// SpMVs is the exact number of SpMV calls the solver issued. It differs
	// from Iterations where the method's structure does: BiCGSTAB pays two
	// per iteration, restarted GMRES pays one per Arnoldi step plus one per
	// restart for the explicit residual. Telemetry attributes per-format
	// SpMV work from this count, not from an iterations-based approximation.
	SpMVs int
	// Progress is the full indicator trace, one entry per iteration.
	Progress []float64
	// X is the solution (or rank vector for PageRank).
	X []float64
}

// parOp wraps a sparse matrix to use its goroutine-parallel kernel.
type parOp struct{ m sparse.Matrix }

func (p parOp) SpMV(y, x []float64) { p.m.SpMVParallel(y, x) }
func (p parOp) Dims() (r, c int)    { return p.m.Dims() }

// Par adapts a sparse matrix into an Operator that uses the parallel SpMV
// kernel, which is how the applications run in the experiments.
func Par(m sparse.Matrix) Operator { return parOp{m} }

// Ser adapts a sparse matrix into an Operator using the serial kernel.
type serOp struct{ m sparse.Matrix }

func (s serOp) SpMV(y, x []float64) { s.m.SpMV(y, x) }
func (s serOp) Dims() (r, c int)    { return s.m.Dims() }

// Ser adapts a sparse matrix into a serial-kernel Operator.
func Ser(m sparse.Matrix) Operator { return serOp{m} }

// canceled reports the context's error, tolerating a nil context so the
// pre-existing call sites (which never set SolveOptions.Ctx) keep working.
func canceled(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// squareDims validates the operator is square and returns n.
func squareDims(op Operator) (int, error) {
	r, c := op.Dims()
	if r != c {
		return 0, fmt.Errorf("apps: operator is %dx%d, want square", r, c)
	}
	if r == 0 {
		return 0, fmt.Errorf("apps: empty operator")
	}
	return r, nil
}
