package apps

import (
	"fmt"
	"math"

	"repro/internal/vec"
)

// GMRES solves A x = b for general square A with the restarted generalized
// minimal residual method GMRES(m): Arnoldi with modified Gram-Schmidt and
// Givens rotations maintain a running residual estimate, which is the
// progress indicator reported once per inner iteration (one SpMV each).
func GMRES(op Operator, b []float64, opt SolveOptions, hook Hook) (Result, error) {
	n, err := squareDims(op)
	if err != nil {
		return Result{}, err
	}
	if err := opt.validate(); err != nil {
		return Result{}, err
	}
	if len(b) != n {
		return Result{}, fmt.Errorf("apps: rhs length %d for %d unknowns", len(b), n)
	}
	m := opt.Restart
	if m <= 0 {
		m = 30
	}
	if m > n {
		m = n
	}
	bnorm := vec.Nrm2(b)
	x := make([]float64, n)
	if bnorm == 0 {
		return Result{Converged: true, X: x}, nil
	}

	res := Result{}
	r := make([]float64, n)
	w := make([]float64, n)
	// Krylov basis (m+1 vectors) and Hessenberg column storage.
	V := make([][]float64, m+1)
	for i := range V {
		V[i] = make([]float64, n)
	}
	h := make([][]float64, m+1) // h[i][j], i row, j column
	for i := range h {
		h[i] = make([]float64, m)
	}
	cs := make([]float64, m)
	sn := make([]float64, m)
	g := make([]float64, m+1)

	totalIter := 0
	for totalIter < opt.MaxIters {
		// r = b - A x
		swapPoint(op)
		op.SpMV(r, x)
		res.SpMVs++
		vec.Sub(r, b, r)
		beta := vec.Nrm2(r)
		if beta <= opt.Tol*bnorm {
			res.Converged = true
			break
		}
		inv := 1 / beta
		for i := range r {
			V[0][i] = r[i] * inv
		}
		for i := range g {
			g[i] = 0
		}
		g[0] = beta

		j := 0
		for ; j < m && totalIter < opt.MaxIters; j++ {
			if err := canceled(opt.Ctx); err != nil {
				res.X = x
				return res, fmt.Errorf("apps: GMRES canceled at iteration %d: %w", totalIter+1, err)
			}
			swapPoint(op)
			op.SpMV(w, V[j])
			res.SpMVs++
			// Modified Gram-Schmidt.
			for i := 0; i <= j; i++ {
				h[i][j] = vec.Dot(w, V[i])
				vec.Axpy(-h[i][j], V[i], w)
			}
			h[j+1][j] = vec.Nrm2(w)
			if h[j+1][j] > 1e-300 {
				winv := 1 / h[j+1][j]
				for i := range w {
					V[j+1][i] = w[i] * winv
				}
			}
			// Apply previous Givens rotations to the new column.
			for i := 0; i < j; i++ {
				tmp := cs[i]*h[i][j] + sn[i]*h[i+1][j]
				h[i+1][j] = -sn[i]*h[i][j] + cs[i]*h[i+1][j]
				h[i][j] = tmp
			}
			// New rotation annihilating h[j+1][j].
			denom := math.Hypot(h[j][j], h[j+1][j])
			if denom < 1e-300 {
				cs[j], sn[j] = 1, 0
			} else {
				cs[j] = h[j][j] / denom
				sn[j] = h[j+1][j] / denom
			}
			h[j][j] = cs[j]*h[j][j] + sn[j]*h[j+1][j]
			h[j+1][j] = 0
			g[j+1] = -sn[j] * g[j]
			g[j] = cs[j] * g[j]

			totalIter++
			rnorm := math.Abs(g[j+1])
			res.Iterations = totalIter
			res.Residual = rnorm
			res.Progress = append(res.Progress, rnorm)
			if hook != nil {
				hook(totalIter, rnorm)
			}
			if rnorm <= opt.Tol*bnorm {
				j++
				break
			}
		}
		// Solve the j x j triangular system and update x.
		y := make([]float64, j)
		for i := j - 1; i >= 0; i-- {
			s := g[i]
			for k := i + 1; k < j; k++ {
				s -= h[i][k] * y[k]
			}
			if math.Abs(h[i][i]) < 1e-300 {
				y[i] = 0
				continue
			}
			y[i] = s / h[i][i]
		}
		for i := 0; i < j; i++ {
			vec.Axpy(y[i], V[i], x)
		}
		if res.Residual <= opt.Tol*bnorm {
			res.Converged = true
			break
		}
	}
	res.X = x
	return res, nil
}
