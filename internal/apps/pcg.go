package apps

import (
	"fmt"
	"math"

	"repro/internal/vec"
)

// Preconditioner applies z = M^{-1} r for a symmetric positive definite
// preconditioner M.
type Preconditioner interface {
	Apply(z, r []float64)
}

// JacobiPreconditioner is the diagonal (Jacobi) preconditioner M = diag(A).
type JacobiPreconditioner struct {
	invDiag []float64
}

// NewJacobiPreconditioner builds the preconditioner from the matrix
// diagonal. Zero diagonal entries are rejected.
func NewJacobiPreconditioner(diag []float64) (*JacobiPreconditioner, error) {
	inv := make([]float64, len(diag))
	for i, d := range diag {
		if d == 0 {
			return nil, fmt.Errorf("apps: Jacobi preconditioner zero diagonal at %d", i)
		}
		inv[i] = 1 / d
	}
	return &JacobiPreconditioner{invDiag: inv}, nil
}

// Apply implements Preconditioner.
func (p *JacobiPreconditioner) Apply(z, r []float64) {
	for i := range z {
		z[i] = r[i] * p.invDiag[i]
	}
}

// IdentityPreconditioner turns PCG back into plain CG; useful for testing
// and as a no-op default.
type IdentityPreconditioner struct{}

// Apply implements Preconditioner.
func (IdentityPreconditioner) Apply(z, r []float64) { copy(z, r) }

// PCG solves A x = b for SPD A with the preconditioned conjugate gradient
// method. One SpMV plus one preconditioner application per iteration; the
// progress indicator is ||r||_2 (the unpreconditioned residual, so traces
// are comparable with CG's).
func PCG(op Operator, m Preconditioner, b []float64, opt SolveOptions, hook Hook) (Result, error) {
	n, err := squareDims(op)
	if err != nil {
		return Result{}, err
	}
	if err := opt.validate(); err != nil {
		return Result{}, err
	}
	if len(b) != n {
		return Result{}, fmt.Errorf("apps: rhs length %d for %d unknowns", len(b), n)
	}
	if m == nil {
		m = IdentityPreconditioner{}
	}
	bnorm := vec.Nrm2(b)
	x := make([]float64, n)
	if bnorm == 0 {
		return Result{Converged: true, X: x}, nil
	}
	r := append([]float64(nil), b...)
	z := make([]float64, n)
	m.Apply(z, r)
	p := append([]float64(nil), z...)
	ap := make([]float64, n)
	rz := vec.Dot(r, z)
	res := Result{}
	for iter := 1; iter <= opt.MaxIters; iter++ {
		if err := canceled(opt.Ctx); err != nil {
			res.X = x
			return res, fmt.Errorf("apps: PCG canceled at iteration %d: %w", iter, err)
		}
		swapPoint(op)
		op.SpMV(ap, p)
		res.SpMVs++
		pap := vec.Dot(p, ap)
		if pap <= 0 {
			res.X = x
			return res, fmt.Errorf("apps: PCG breakdown, p'Ap = %g (matrix not SPD?)", pap)
		}
		alpha := rz / pap
		vec.Axpy(alpha, p, x)
		vec.Axpy(-alpha, ap, r)
		rnorm := vec.Nrm2(r)
		res.Iterations = iter
		res.Residual = rnorm
		res.Progress = append(res.Progress, rnorm)
		if hook != nil {
			hook(iter, rnorm)
		}
		if rnorm <= opt.Tol*bnorm {
			res.Converged = true
			break
		}
		m.Apply(z, r)
		rzNew := vec.Dot(r, z)
		if math.Abs(rz) < 1e-300 {
			res.X = x
			return res, fmt.Errorf("apps: PCG breakdown, r'z = %g", rz)
		}
		beta := rzNew / rz
		for i := range p {
			p[i] = z[i] + beta*p[i]
		}
		rz = rzNew
	}
	res.X = x
	return res, nil
}
