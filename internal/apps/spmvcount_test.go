package apps

import (
	"math/rand"
	"testing"

	"repro/internal/matgen"
)

// countingOp wraps an Operator and counts SpMV invocations — the ground
// truth the solvers' Result.SpMVs attribution is checked against.
type countingOp struct {
	Operator
	calls int
}

func (c *countingOp) SpMV(y, x []float64) {
	c.calls++
	c.Operator.SpMV(y, x)
}

// TestResultSpMVAttribution checks that every solver reports exactly the
// SpMV calls it issued (counted at the operator), and that the per-iteration
// arithmetic matches each algorithm: CG/Jacobi/PCG/PageRank cost 1 SpMV per
// iteration, BiCGSTAB costs 2 (1 when the final iteration exits at the
// mid-loop check), GMRES costs 1 per Arnoldi step plus 1 residual per
// restart cycle.
func TestResultSpMVAttribution(t *testing.T) {
	a, b, _ := spdSystem(t, 200, 11)
	opt := DefaultSolveOptions()
	opt.Tol = 1e-10

	t.Run("cg", func(t *testing.T) {
		op := &countingOp{Operator: Ser(a)}
		res, err := CG(op, b, opt, nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.SpMVs != op.calls {
			t.Errorf("reported %d SpMVs, operator saw %d", res.SpMVs, op.calls)
		}
		if res.SpMVs != res.Iterations {
			t.Errorf("CG: %d SpMVs over %d iterations, want 1/iter", res.SpMVs, res.Iterations)
		}
	})

	t.Run("pcg", func(t *testing.T) {
		op := &countingOp{Operator: Ser(a)}
		res, err := PCG(op, IdentityPreconditioner{}, b, opt, nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.SpMVs != op.calls || res.SpMVs != res.Iterations {
			t.Errorf("PCG: reported %d, counted %d, iterations %d", res.SpMVs, op.calls, res.Iterations)
		}
	})

	t.Run("bicgstab", func(t *testing.T) {
		op := &countingOp{Operator: Ser(a)}
		res, err := BiCGSTAB(op, b, opt, nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.SpMVs != op.calls {
			t.Errorf("reported %d SpMVs, operator saw %d", res.SpMVs, op.calls)
		}
		if res.SpMVs != 2*res.Iterations && res.SpMVs != 2*res.Iterations-1 {
			t.Errorf("BiCGSTAB: %d SpMVs over %d iterations, want 2/iter (last may be 1)",
				res.SpMVs, res.Iterations)
		}
	})

	t.Run("gmres", func(t *testing.T) {
		gopt := opt
		gopt.Restart = 20 // force several restart cycles
		op := &countingOp{Operator: Ser(a)}
		res, err := GMRES(op, b, gopt, nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.SpMVs != op.calls {
			t.Errorf("reported %d SpMVs, operator saw %d", res.SpMVs, op.calls)
		}
		// 1 per Arnoldi step + 1 residual per started cycle.
		cycles := (res.Iterations + gopt.Restart - 1) / gopt.Restart
		if res.SpMVs != res.Iterations+cycles {
			t.Errorf("GMRES: %d SpMVs over %d iterations in %d cycles, want %d",
				res.SpMVs, res.Iterations, cycles, res.Iterations+cycles)
		}
		if res.SpMVs <= res.Iterations {
			t.Error("GMRES must issue more SpMVs than Arnoldi steps (restart residuals)")
		}
	})

	t.Run("jacobi", func(t *testing.T) {
		n, _ := a.Dims()
		diag := make([]float64, n)
		for i := 0; i < n; i++ {
			diag[i] = a.At(i, i)
		}
		op := &countingOp{Operator: Ser(a)}
		res, err := Jacobi(op, diag, b, 1.0, opt, nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.SpMVs != op.calls || res.SpMVs != res.Iterations {
			t.Errorf("Jacobi: reported %d, counted %d, iterations %d", res.SpMVs, op.calls, res.Iterations)
		}
	})

	t.Run("pagerank", func(t *testing.T) {
		rng := rand.New(rand.NewSource(13))
		g, err := matgen.Random(300, 300, 4, rng)
		if err != nil {
			t.Fatal(err)
		}
		p, dangling, err := BuildTransition(g)
		if err != nil {
			t.Fatal(err)
		}
		op := &countingOp{Operator: Ser(p)}
		res, err := PageRank(op, dangling, DefaultPageRankOptions(), nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.SpMVs != op.calls || res.SpMVs != res.Iterations {
			t.Errorf("PageRank: reported %d, counted %d, iterations %d", res.SpMVs, op.calls, res.Iterations)
		}
	})

	t.Run("power", func(t *testing.T) {
		op := &countingOp{Operator: Ser(a)}
		res, err := PowerMethod(op, DefaultSolveOptions(), nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.SpMVs != op.calls || res.SpMVs != res.Iterations {
			t.Errorf("power: reported %d, counted %d, iterations %d", res.SpMVs, op.calls, res.Iterations)
		}
	})
}
