package apps

import (
	"testing"
)

func TestPCGMatchesCGWithIdentity(t *testing.T) {
	a, b, _ := spdSystem(t, 200, 30)
	ref, err := CG(Ser(a), b, DefaultSolveOptions(), nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := PCG(Ser(a), IdentityPreconditioner{}, b, DefaultSolveOptions(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("identity-PCG did not converge")
	}
	if d := res.Iterations - ref.Iterations; d < -1 || d > 1 {
		t.Errorf("identity-PCG took %d iterations vs CG %d", res.Iterations, ref.Iterations)
	}
	checkSolution(t, a, res.X, b, 1e-6, "PCG/identity")
}

func TestPCGJacobiAcceleratesScaledSystem(t *testing.T) {
	// A badly row-scaled SPD system: Jacobi preconditioning should cut the
	// iteration count substantially versus plain CG.
	a, b, _ := spdSystem(t, 300, 31)
	n, _ := a.Dims()
	// Scale row/col i by s_i, keeping symmetry: A' = D A D.
	scaled := a.Clone()
	scale := make([]float64, n)
	for i := range scale {
		scale[i] = 1 + 99*float64(i%7)/6 // 1..100
	}
	for i := 0; i < n; i++ {
		for k := scaled.Ptr[i]; k < scaled.Ptr[i+1]; k++ {
			scaled.Data[k] *= scale[i] * scale[scaled.Col[k]]
		}
	}
	opt := DefaultSolveOptions()
	opt.MaxIters = 100000
	plain, err := CG(Ser(scaled), b, opt, nil)
	if err != nil {
		t.Fatal(err)
	}
	pre, err := NewJacobiPreconditioner(scaled.Diag())
	if err != nil {
		t.Fatal(err)
	}
	pcg, err := PCG(Ser(scaled), pre, b, opt, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !plain.Converged || !pcg.Converged {
		t.Fatalf("convergence: CG %v (%d), PCG %v (%d)", plain.Converged, plain.Iterations, pcg.Converged, pcg.Iterations)
	}
	if pcg.Iterations >= plain.Iterations {
		t.Errorf("Jacobi PCG took %d iterations, plain CG %d: no acceleration", pcg.Iterations, plain.Iterations)
	}
	checkSolution(t, scaled, pcg.X, b, 1e-6, "PCG/Jacobi")
}

func TestPCGNilPreconditionerDefaults(t *testing.T) {
	a, b, _ := spdSystem(t, 80, 32)
	res, err := PCG(Ser(a), nil, b, DefaultSolveOptions(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("nil-preconditioner PCG did not converge")
	}
}

func TestJacobiPreconditionerValidation(t *testing.T) {
	if _, err := NewJacobiPreconditioner([]float64{1, 0, 2}); err == nil {
		t.Error("zero diagonal accepted")
	}
}

func TestPCGZeroRHS(t *testing.T) {
	a, _, _ := spdSystem(t, 40, 33)
	res, err := PCG(Ser(a), nil, make([]float64, 40), DefaultSolveOptions(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Error("zero rhs not immediately converged")
	}
}
