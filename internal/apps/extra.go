package apps

import (
	"fmt"
	"math"

	"repro/internal/vec"
)

// Jacobi solves A x = b for diagonally dominant A with the damped Jacobi
// iteration x' = x + omega * D^{-1} (b - A x). One SpMV per iteration; the
// progress indicator is ||b - A x||_2. diag must hold the matrix diagonal
// (the Operator interface intentionally hides storage, so the caller
// extracts it once up front).
func Jacobi(op Operator, diag, b []float64, omega float64, opt SolveOptions, hook Hook) (Result, error) {
	n, err := squareDims(op)
	if err != nil {
		return Result{}, err
	}
	if err := opt.validate(); err != nil {
		return Result{}, err
	}
	if len(b) != n || len(diag) != n {
		return Result{}, fmt.Errorf("apps: Jacobi rhs/diag lengths %d/%d for %d unknowns", len(b), len(diag), n)
	}
	if omega <= 0 || omega > 1 {
		return Result{}, fmt.Errorf("apps: Jacobi damping %g outside (0, 1]", omega)
	}
	for i, d := range diag {
		if d == 0 {
			return Result{}, fmt.Errorf("apps: Jacobi zero diagonal at row %d", i)
		}
	}
	bnorm := vec.Nrm2(b)
	x := make([]float64, n)
	if bnorm == 0 {
		return Result{Converged: true, X: x}, nil
	}
	ax := make([]float64, n)
	res := Result{}
	for iter := 1; iter <= opt.MaxIters; iter++ {
		if err := canceled(opt.Ctx); err != nil {
			res.X = x
			return res, fmt.Errorf("apps: Jacobi canceled at iteration %d: %w", iter, err)
		}
		swapPoint(op)
		op.SpMV(ax, x)
		res.SpMVs++
		var rnorm float64
		for i := range x {
			r := b[i] - ax[i]
			rnorm += r * r
			x[i] += omega * r / diag[i]
		}
		rnorm = math.Sqrt(rnorm)
		res.Iterations = iter
		res.Residual = rnorm
		res.Progress = append(res.Progress, rnorm)
		if hook != nil {
			hook(iter, rnorm)
		}
		if rnorm <= opt.Tol*bnorm {
			res.Converged = true
			break
		}
	}
	res.X = x
	return res, nil
}

// PowerMethod computes the dominant eigenvalue and eigenvector of A by
// power iteration. One SpMV per iteration; the progress indicator is the
// Rayleigh-quotient delta |lambda_k - lambda_{k-1}|. Returns the final
// eigenvalue estimate in Residual's place via the Eigen field of
// PowerResult.
type PowerResult struct {
	Result
	// Eigenvalue is the dominant eigenvalue estimate.
	Eigenvalue float64
}

// PowerMethod runs the power iteration from the all-ones vector.
func PowerMethod(op Operator, opt SolveOptions, hook Hook) (PowerResult, error) {
	n, err := squareDims(op)
	if err != nil {
		return PowerResult{}, err
	}
	if err := opt.validate(); err != nil {
		return PowerResult{}, err
	}
	x := make([]float64, n)
	vec.Fill(x, 1/math.Sqrt(float64(n)))
	ax := make([]float64, n)
	out := PowerResult{}
	lambda := 0.0
	for iter := 1; iter <= opt.MaxIters; iter++ {
		if err := canceled(opt.Ctx); err != nil {
			out.X = x
			return out, fmt.Errorf("apps: power method canceled at iteration %d: %w", iter, err)
		}
		swapPoint(op)
		op.SpMV(ax, x)
		out.SpMVs++
		newLambda := vec.Dot(x, ax)
		norm := vec.Nrm2(ax)
		if norm == 0 {
			// A x = 0: x is in the null space; the dominant eigenvalue of
			// the restriction is 0 and iteration cannot continue.
			out.Eigenvalue = 0
			out.Converged = true
			out.X = x
			return out, nil
		}
		inv := 1 / norm
		for i := range x {
			x[i] = ax[i] * inv
		}
		delta := math.Abs(newLambda - lambda)
		lambda = newLambda
		out.Iterations = iter
		out.Residual = delta
		out.Progress = append(out.Progress, delta)
		if hook != nil {
			hook(iter, delta)
		}
		if iter > 1 && delta <= opt.Tol*math.Max(1, math.Abs(lambda)) {
			out.Converged = true
			break
		}
	}
	out.Eigenvalue = lambda
	out.X = x
	return out, nil
}
