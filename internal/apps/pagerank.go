package apps

import (
	"context"
	"fmt"

	"repro/internal/sparse"
	"repro/internal/vec"
)

// PageRankOptions configures the power iteration.
type PageRankOptions struct {
	// Damping is the damping factor (0.85 in the original paper).
	Damping float64
	// Tol is the L1 convergence tolerance on the rank-vector delta, the
	// loop's progress indicator.
	Tol float64
	// MaxIters caps the iteration count.
	MaxIters int
	// Ctx optionally carries a cancellation context, checked once per
	// iteration; nil disables the check (see SolveOptions.Ctx).
	Ctx context.Context
}

// DefaultPageRankOptions matches common PageRank practice.
func DefaultPageRankOptions() PageRankOptions {
	return PageRankOptions{Damping: 0.85, Tol: 1e-8, MaxIters: 1000}
}

// BuildTransition turns an adjacency matrix (A[i][j] != 0 meaning an edge
// i -> j) into the column-stochastic transition matrix P = normalize(A^T)
// plus the list of dangling nodes (no out-links). The rank update is then
// x' = d*P*x + teleport.
func BuildTransition(adj *sparse.CSR) (*sparse.CSR, []bool, error) {
	rows, cols := adj.Dims()
	if rows != cols {
		return nil, nil, fmt.Errorf("apps: adjacency is %dx%d, want square", rows, cols)
	}
	// Out-degree of node i = weight sum of row i.
	outDeg := make([]float64, rows)
	dangling := make([]bool, rows)
	for i := 0; i < rows; i++ {
		var s float64
		for k := adj.Ptr[i]; k < adj.Ptr[i+1]; k++ {
			v := adj.Data[k]
			if v < 0 {
				v = -v
			}
			s += v
		}
		outDeg[i] = s
		dangling[i] = s == 0
	}
	// P = A^T with column j (origin node) scaled by 1/outDeg[j].
	at := adj.Transpose()
	ptr := append([]int(nil), at.Ptr...)
	col := append([]int32(nil), at.Col...)
	data := append([]float64(nil), at.Data...)
	for k, c := range col {
		v := data[k]
		if v < 0 {
			v = -v
		}
		data[k] = v / outDeg[c] // outDeg > 0 whenever the column has entries
	}
	p, err := sparse.NewCSR(rows, cols, ptr, col, data)
	if err != nil {
		return nil, nil, fmt.Errorf("apps: building transition matrix: %w", err)
	}
	return p, dangling, nil
}

// PageRank runs the power iteration x' = d*P*x + ((1-d) + d*danglingMass)/n
// on a column-stochastic transition operator (see BuildTransition). The
// progress indicator is the L1 delta ||x' - x||_1.
func PageRank(op Operator, dangling []bool, opt PageRankOptions, hook Hook) (Result, error) {
	n, err := squareDims(op)
	if err != nil {
		return Result{}, err
	}
	if len(dangling) != n {
		return Result{}, fmt.Errorf("apps: dangling list has %d entries for %d nodes", len(dangling), n)
	}
	if opt.Damping <= 0 || opt.Damping >= 1 {
		return Result{}, fmt.Errorf("apps: damping %g outside (0,1)", opt.Damping)
	}
	if opt.MaxIters <= 0 || opt.Tol <= 0 {
		return Result{}, fmt.Errorf("apps: invalid MaxIters %d / Tol %g", opt.MaxIters, opt.Tol)
	}
	x := make([]float64, n)
	vec.Fill(x, 1/float64(n))
	next := make([]float64, n)
	res := Result{}
	for iter := 1; iter <= opt.MaxIters; iter++ {
		if err := canceled(opt.Ctx); err != nil {
			res.X = x
			return res, fmt.Errorf("apps: PageRank canceled at iteration %d: %w", iter, err)
		}
		swapPoint(op)
		var danglingMass float64
		for i, d := range dangling {
			if d {
				danglingMass += x[i]
			}
		}
		op.SpMV(next, x)
		res.SpMVs++
		teleport := ((1 - opt.Damping) + opt.Damping*danglingMass) / float64(n)
		var delta float64
		for i := range next {
			next[i] = opt.Damping*next[i] + teleport
			d := next[i] - x[i]
			if d < 0 {
				d = -d
			}
			delta += d
		}
		x, next = next, x
		res.Iterations = iter
		res.Residual = delta
		res.Progress = append(res.Progress, delta)
		if hook != nil {
			hook(iter, delta)
		}
		if delta <= opt.Tol {
			res.Converged = true
			break
		}
	}
	res.X = x
	return res, nil
}
