package apps

import (
	"context"
	"fmt"
	"math"

	"repro/internal/vec"
)

// SolveOptions configures the linear solvers.
type SolveOptions struct {
	// Tol is the convergence tolerance on the relative residual
	// ||r|| / ||b||; the absolute residual norm is the progress indicator.
	Tol float64
	// MaxIters caps the iteration count.
	MaxIters int
	// Restart is the GMRES restart length (ignored by CG/BiCGSTAB).
	Restart int
	// Ctx optionally carries a cancellation context. Solvers check it once
	// per iteration and return early with an error wrapping ctx.Err(), the
	// partial iterate in Result.X. A nil Ctx (the zero value) disables the
	// check, so existing callers are unaffected.
	Ctx context.Context
}

// DefaultSolveOptions matches the experiments' settings.
func DefaultSolveOptions() SolveOptions {
	return SolveOptions{Tol: 1e-8, MaxIters: 10000, Restart: 30}
}

func (o SolveOptions) validate() error {
	if o.Tol <= 0 {
		return fmt.Errorf("apps: non-positive tolerance %g", o.Tol)
	}
	if o.MaxIters <= 0 {
		return fmt.Errorf("apps: non-positive MaxIters %d", o.MaxIters)
	}
	return nil
}

// CG solves A x = b for symmetric positive definite A with the conjugate
// gradient method. The progress indicator is ||r||_2 per iteration.
func CG(op Operator, b []float64, opt SolveOptions, hook Hook) (Result, error) {
	n, err := squareDims(op)
	if err != nil {
		return Result{}, err
	}
	if err := opt.validate(); err != nil {
		return Result{}, err
	}
	if len(b) != n {
		return Result{}, fmt.Errorf("apps: rhs length %d for %d unknowns", len(b), n)
	}
	x := make([]float64, n)
	r := append([]float64(nil), b...) // r = b - A*0
	p := append([]float64(nil), b...)
	ap := make([]float64, n)
	bnorm := vec.Nrm2(b)
	if bnorm == 0 {
		return Result{Converged: true, X: x}, nil
	}
	rsold := vec.Dot(r, r)
	res := Result{}
	for iter := 1; iter <= opt.MaxIters; iter++ {
		if err := canceled(opt.Ctx); err != nil {
			res.X = x
			return res, fmt.Errorf("apps: CG canceled at iteration %d: %w", iter, err)
		}
		swapPoint(op)
		op.SpMV(ap, p)
		res.SpMVs++
		pap := vec.Dot(p, ap)
		if pap <= 0 {
			// Not SPD (or numerical breakdown): stop with what we have.
			res.X = x
			return res, fmt.Errorf("apps: CG breakdown, p'Ap = %g (matrix not SPD?)", pap)
		}
		alpha := rsold / pap
		vec.Axpy(alpha, p, x)
		vec.Axpy(-alpha, ap, r)
		rsnew := vec.Dot(r, r)
		rnorm := math.Sqrt(rsnew)
		res.Iterations = iter
		res.Residual = rnorm
		res.Progress = append(res.Progress, rnorm)
		if hook != nil {
			hook(iter, rnorm)
		}
		if rnorm <= opt.Tol*bnorm {
			res.Converged = true
			break
		}
		beta := rsnew / rsold
		for i := range p {
			p[i] = r[i] + beta*p[i]
		}
		rsold = rsnew
	}
	res.X = x
	return res, nil
}
