package apps_test

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/apps"
	"repro/internal/matgen"
)

// TestSolversHonorCanceledContext runs every solver with an already-canceled
// context: each must return promptly with an error wrapping context.Canceled
// and without executing a single iteration.
func TestSolversHonorCanceledContext(t *testing.T) {
	m, err := matgen.Stencil2D(20)
	if err != nil {
		t.Fatal(err)
	}
	n, _ := m.Dims()
	b := make([]float64, n)
	diag := make([]float64, n)
	for i := range b {
		b[i] = 1
		diag[i] = m.At(i, i)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opt := apps.DefaultSolveOptions()
	opt.Ctx = ctx
	op := apps.Ser(m)

	pre, err := apps.NewJacobiPreconditioner(diag)
	if err != nil {
		t.Fatal(err)
	}
	runs := map[string]func() (apps.Result, error){
		"cg":       func() (apps.Result, error) { return apps.CG(op, b, opt, nil) },
		"pcg":      func() (apps.Result, error) { return apps.PCG(op, pre, b, opt, nil) },
		"bicgstab": func() (apps.Result, error) { return apps.BiCGSTAB(op, b, opt, nil) },
		"gmres":    func() (apps.Result, error) { return apps.GMRES(op, b, opt, nil) },
		"jacobi":   func() (apps.Result, error) { return apps.Jacobi(op, diag, b, 0.8, opt, nil) },
		"power": func() (apps.Result, error) {
			r, err := apps.PowerMethod(op, opt, nil)
			return r.Result, err
		},
	}
	for name, run := range runs {
		res, err := run()
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%s: error %v does not wrap context.Canceled", name, err)
		}
		if res.Iterations != 0 {
			t.Errorf("%s: executed %d iterations under a canceled context", name, res.Iterations)
		}
	}

	// PageRank takes different arguments; exercise it separately.
	adj, err := matgen.PowerLaw(200, 200, 4, 2.1, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	p, dangling, err := apps.BuildTransition(adj)
	if err != nil {
		t.Fatal(err)
	}
	propt := apps.DefaultPageRankOptions()
	propt.Ctx = ctx
	res, err := apps.PageRank(apps.Ser(p), dangling, propt, nil)
	if !errors.Is(err, context.Canceled) {
		t.Errorf("pagerank: error %v does not wrap context.Canceled", err)
	}
	if res.Iterations != 0 {
		t.Errorf("pagerank: executed %d iterations under a canceled context", res.Iterations)
	}
}

// TestCancelMidSolve cancels from inside the progress hook and checks the
// solver stops within one iteration, returning the partial iterate.
func TestCancelMidSolve(t *testing.T) {
	m, err := matgen.Stencil2D(30)
	if err != nil {
		t.Fatal(err)
	}
	n, _ := m.Dims()
	b := make([]float64, n)
	for i := range b {
		b[i] = 1
	}
	ctx, cancel := context.WithCancel(context.Background())
	opt := apps.DefaultSolveOptions()
	opt.Tol = 1e-12 // long loop; cancellation is what stops it
	opt.Ctx = ctx
	res, err := apps.CG(apps.Ser(m), b, opt, func(it int, _ float64) {
		if it == 5 {
			cancel()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not wrap context.Canceled", err)
	}
	if res.Iterations != 5 {
		t.Errorf("stopped after %d iterations, want 5", res.Iterations)
	}
	if res.X == nil {
		t.Error("partial iterate missing after cancellation")
	}
}
