package apps

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/matgen"
	"repro/internal/sparse"
	"repro/internal/vec"
)

// spdSystem builds a small SPD system with a known solution.
func spdSystem(t testing.TB, n int, seed int64) (*sparse.CSR, []float64, []float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	base, err := matgen.Random(n, n, 5, rng)
	if err != nil {
		t.Fatal(err)
	}
	a, err := matgen.MakeSPD(base)
	if err != nil {
		t.Fatal(err)
	}
	xTrue := make([]float64, n)
	for i := range xTrue {
		xTrue[i] = rng.NormFloat64()
	}
	b := make([]float64, n)
	a.SpMV(b, xTrue)
	return a, b, xTrue
}

func checkSolution(t *testing.T, a *sparse.CSR, x, b []float64, tol float64, label string) {
	t.Helper()
	n, _ := a.Dims()
	r := make([]float64, n)
	a.SpMV(r, x)
	vec.Sub(r, b, r)
	rel := vec.Nrm2(r) / vec.Nrm2(b)
	if rel > tol {
		t.Errorf("%s: relative residual %g > %g", label, rel, tol)
	}
}

func TestCGSolvesSPD(t *testing.T) {
	a, b, _ := spdSystem(t, 200, 1)
	res, err := CG(Ser(a), b, DefaultSolveOptions(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("CG did not converge in %d iterations (res %g)", res.Iterations, res.Residual)
	}
	checkSolution(t, a, res.X, b, 1e-6, "CG")
	if len(res.Progress) != res.Iterations {
		t.Errorf("progress length %d != iterations %d", len(res.Progress), res.Iterations)
	}
}

func TestCGProgressDecreasesOverall(t *testing.T) {
	a, b, _ := spdSystem(t, 300, 2)
	res, err := CG(Par(a), b, DefaultSolveOptions(), nil)
	if err != nil {
		t.Fatal(err)
	}
	first := res.Progress[0]
	last := res.Progress[len(res.Progress)-1]
	if last >= first {
		t.Errorf("CG made no progress: %g -> %g", first, last)
	}
}

func TestCGBreaksOnIndefinite(t *testing.T) {
	// -I is symmetric negative definite: p'Ap < 0 on the first step.
	dense := []float64{-1, 0, 0, -1}
	a, err := sparse.FromDense(2, 2, dense)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CG(Ser(a), []float64{1, 1}, DefaultSolveOptions(), nil); err == nil {
		t.Error("CG accepted an indefinite matrix")
	}
}

func TestBiCGSTABSolvesGeneral(t *testing.T) {
	// Nonsymmetric diagonally dominant system.
	rng := rand.New(rand.NewSource(3))
	n := 200
	base, err := matgen.Random(n, n, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Make strictly diagonally dominant but keep asymmetry.
	var ri, ci []int32
	var v []float64
	for i := 0; i < n; i++ {
		var rowAbs float64
		for k := base.Ptr[i]; k < base.Ptr[i+1]; k++ {
			if int(base.Col[k]) != i {
				ri = append(ri, int32(i))
				ci = append(ci, base.Col[k])
				v = append(v, base.Data[k])
				rowAbs += math.Abs(base.Data[k])
			}
		}
		ri = append(ri, int32(i))
		ci = append(ci, int32(i))
		v = append(v, rowAbs+1)
	}
	coo, err := sparse.NewCOO(n, n, ri, ci, v)
	if err != nil {
		t.Fatal(err)
	}
	a, err := sparse.COOToCSR(coo)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	res, err := BiCGSTAB(Ser(a), b, DefaultSolveOptions(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("BiCGSTAB did not converge (res %g after %d)", res.Residual, res.Iterations)
	}
	checkSolution(t, a, res.X, b, 1e-6, "BiCGSTAB")
}

func TestBiCGSTABOnSPD(t *testing.T) {
	a, b, _ := spdSystem(t, 150, 4)
	res, err := BiCGSTAB(Ser(a), b, DefaultSolveOptions(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("BiCGSTAB failed on SPD system")
	}
	checkSolution(t, a, res.X, b, 1e-6, "BiCGSTAB/SPD")
}

func TestGMRESSolvesGeneral(t *testing.T) {
	a, b, _ := spdSystem(t, 150, 5)
	res, err := GMRES(Ser(a), b, DefaultSolveOptions(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("GMRES did not converge (res %g after %d)", res.Residual, res.Iterations)
	}
	checkSolution(t, a, res.X, b, 1e-6, "GMRES")
}

func TestGMRESRestartSmallerThanN(t *testing.T) {
	a, b, _ := spdSystem(t, 120, 6)
	opt := DefaultSolveOptions()
	opt.Restart = 10
	res, err := GMRES(Ser(a), b, opt, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("GMRES(10) did not converge (res %g)", res.Residual)
	}
	checkSolution(t, a, res.X, b, 1e-6, "GMRES(10)")
}

func TestGMRESHonorsMaxIters(t *testing.T) {
	a, b, _ := spdSystem(t, 200, 7)
	opt := DefaultSolveOptions()
	opt.Tol = 1e-300 // unreachable
	opt.MaxIters = 37
	res, err := GMRES(Ser(a), b, opt, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged || res.Iterations != 37 {
		t.Errorf("converged=%v iterations=%d, want false/37", res.Converged, res.Iterations)
	}
}

func TestPageRankUniformOnCycle(t *testing.T) {
	// A directed cycle: perfectly uniform ranks.
	n := 50
	ri := make([]int32, n)
	ci := make([]int32, n)
	v := make([]float64, n)
	for i := 0; i < n; i++ {
		ri[i] = int32(i)
		ci[i] = int32((i + 1) % n)
		v[i] = 1
	}
	coo, err := sparse.NewCOO(n, n, ri, ci, v)
	if err != nil {
		t.Fatal(err)
	}
	adj, err := sparse.COOToCSR(coo)
	if err != nil {
		t.Fatal(err)
	}
	p, dangling, err := BuildTransition(adj)
	if err != nil {
		t.Fatal(err)
	}
	res, err := PageRank(Ser(p), dangling, DefaultPageRankOptions(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("PageRank did not converge on cycle")
	}
	for i, r := range res.X {
		if math.Abs(r-1.0/float64(n)) > 1e-6 {
			t.Fatalf("rank[%d] = %g, want %g", i, r, 1.0/float64(n))
		}
	}
}

func TestPageRankMassConservedWithDangling(t *testing.T) {
	// Star with a dangling center: node 0 has no out-links, 1..n-1 -> 0.
	n := 20
	var ri, ci []int32
	var v []float64
	for i := 1; i < n; i++ {
		ri = append(ri, int32(i))
		ci = append(ci, 0)
		v = append(v, 1)
	}
	coo, err := sparse.NewCOO(n, n, ri, ci, v)
	if err != nil {
		t.Fatal(err)
	}
	adj, err := sparse.COOToCSR(coo)
	if err != nil {
		t.Fatal(err)
	}
	p, dangling, err := BuildTransition(adj)
	if err != nil {
		t.Fatal(err)
	}
	if !dangling[0] || dangling[1] {
		t.Fatalf("dangling flags wrong: %v", dangling[:3])
	}
	res, err := PageRank(Ser(p), dangling, DefaultPageRankOptions(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("PageRank did not converge")
	}
	var mass float64
	for _, r := range res.X {
		mass += r
	}
	if math.Abs(mass-1) > 1e-9 {
		t.Errorf("rank mass = %g, want 1", mass)
	}
	// The hub must outrank the leaves.
	if res.X[0] <= res.X[1] {
		t.Errorf("hub rank %g <= leaf rank %g", res.X[0], res.X[1])
	}
}

func TestHookSeesEveryIteration(t *testing.T) {
	a, b, _ := spdSystem(t, 100, 8)
	var iters []int
	var values []float64
	res, err := CG(Ser(a), b, DefaultSolveOptions(), func(it int, p float64) {
		iters = append(iters, it)
		values = append(values, p)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(iters) != res.Iterations {
		t.Fatalf("hook called %d times for %d iterations", len(iters), res.Iterations)
	}
	for i := range iters {
		if iters[i] != i+1 {
			t.Fatalf("hook iteration %d at position %d", iters[i], i)
		}
		if values[i] != res.Progress[i] {
			t.Fatalf("hook value %g != progress %g", values[i], res.Progress[i])
		}
	}
}

func TestSolverInputValidation(t *testing.T) {
	a, b, _ := spdSystem(t, 10, 9)
	bad := b[:5]
	if _, err := CG(Ser(a), bad, DefaultSolveOptions(), nil); err == nil {
		t.Error("CG accepted short rhs")
	}
	if _, err := BiCGSTAB(Ser(a), bad, DefaultSolveOptions(), nil); err == nil {
		t.Error("BiCGSTAB accepted short rhs")
	}
	if _, err := GMRES(Ser(a), bad, DefaultSolveOptions(), nil); err == nil {
		t.Error("GMRES accepted short rhs")
	}
	opt := DefaultSolveOptions()
	opt.Tol = -1
	if _, err := CG(Ser(a), b, opt, nil); err == nil {
		t.Error("CG accepted negative tolerance")
	}
	rect, err := sparse.FromDense(2, 3, make([]float64, 6))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CG(Ser(rect), []float64{1, 1, 1}, DefaultSolveOptions(), nil); err == nil {
		t.Error("CG accepted non-square operator")
	}
	prOpt := DefaultPageRankOptions()
	prOpt.Damping = 1.5
	if _, err := PageRank(Ser(a), make([]bool, 10), prOpt, nil); err == nil {
		t.Error("PageRank accepted damping > 1")
	}
	if _, err := PageRank(Ser(a), make([]bool, 3), DefaultPageRankOptions(), nil); err == nil {
		t.Error("PageRank accepted wrong dangling length")
	}
	if _, _, err := BuildTransition(rect); err == nil {
		t.Error("BuildTransition accepted non-square adjacency")
	}
}

func TestZeroRHS(t *testing.T) {
	a, _, _ := spdSystem(t, 20, 10)
	zero := make([]float64, 20)
	for name, run := range map[string]func() (Result, error){
		"CG":       func() (Result, error) { return CG(Ser(a), zero, DefaultSolveOptions(), nil) },
		"BiCGSTAB": func() (Result, error) { return BiCGSTAB(Ser(a), zero, DefaultSolveOptions(), nil) },
		"GMRES":    func() (Result, error) { return GMRES(Ser(a), zero, DefaultSolveOptions(), nil) },
	} {
		res, err := run()
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if !res.Converged {
			t.Errorf("%s: zero rhs not immediately converged", name)
		}
		for _, xi := range res.X {
			if xi != 0 {
				t.Errorf("%s: nonzero solution for zero rhs", name)
			}
		}
	}
}

func TestSolversAgreeAcrossFormats(t *testing.T) {
	// The same system solved on different formats must give the same
	// iterate counts and solution (kernels are numerically identical).
	a, b, _ := spdSystem(t, 150, 11)
	ref, err := CG(Ser(a), b, DefaultSolveOptions(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range sparse.AllFormats {
		m, err := sparse.ConvertFromCSR(a, f, sparse.Limits{
			DIAFill: 1e9, ELLFill: 1e9, BSRFill: 1e9, BSRBlockSize: 4, HYBRowFraction: 1.0 / 3.0,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := CG(Ser(m), b, DefaultSolveOptions(), nil)
		if err != nil {
			t.Fatalf("%v: %v", f, err)
		}
		if !res.Converged {
			t.Fatalf("%v: not converged", f)
		}
		if res.Iterations != ref.Iterations {
			// Formats reorder additions; allow a small iteration delta.
			d := res.Iterations - ref.Iterations
			if d < -2 || d > 2 {
				t.Errorf("%v: %d iterations vs CSR %d", f, res.Iterations, ref.Iterations)
			}
		}
		checkSolution(t, a, res.X, b, 1e-6, f.String())
	}
}

func TestQuickCGConvergesOnSPDFamilies(t *testing.T) {
	cfg := &quick.Config{MaxCount: 10, Rand: rand.New(rand.NewSource(12))}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(150) + 50
		base, err := matgen.Random(n, n, 4, rng)
		if err != nil {
			return false
		}
		a, err := matgen.MakeSPD(base)
		if err != nil {
			return false
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		res, err := CG(Ser(a), b, DefaultSolveOptions(), nil)
		return err == nil && res.Converged
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}
