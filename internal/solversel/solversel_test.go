package solversel

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/gbt"
	"repro/internal/matgen"
	"repro/internal/sparse"
)

// mixedCorpus generates a half-SPD, half-nonsymmetric corpus so CG validity
// actually varies.
func mixedCorpus(t testing.TB, count int, seed int64) []*sparse.CSR {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	out := make([]*sparse.CSR, 0, count)
	for i := 0; i < count; i++ {
		size := 200 + rng.Intn(600)
		base, err := matgen.Random(size, size, 5, rng)
		if err != nil {
			t.Fatal(err)
		}
		var m *sparse.CSR
		if i%2 == 0 {
			m, err = matgen.MakeSPD(base)
		} else {
			m, err = matgen.MakeDominant(base, 0.05)
		}
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, m)
	}
	return out
}

func collectAll(t testing.TB, mats []*sparse.CSR, seed int64) []Sample {
	t.Helper()
	var samples []Sample
	opt := DefaultRunOptions()
	opt.Seed = seed
	for i, m := range mats {
		s, err := CollectOne(string(rune('a'+i%26))+"-mat", m, opt)
		if err != nil {
			continue
		}
		samples = append(samples, s)
	}
	if len(samples) < len(mats)/2 {
		t.Fatalf("only %d of %d systems produced samples", len(samples), len(mats))
	}
	return samples
}

func TestCollectOneValidityPattern(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	base, err := matgen.Random(300, 300, 5, rng)
	if err != nil {
		t.Fatal(err)
	}
	spd, err := matgen.MakeSPD(base)
	if err != nil {
		t.Fatal(err)
	}
	s, err := CollectOne("spd", spd, DefaultRunOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Cost[SolverCG]; !ok {
		t.Error("CG missing on an SPD system")
	}
	if _, ok := s.Cost[SolverBiCGSTAB]; !ok {
		t.Error("BiCGSTAB missing on an SPD system")
	}

	nonsym, err := matgen.MakeDominant(base, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := CollectOne("nonsym", nonsym, DefaultRunOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s2.Cost[SolverBiCGSTAB]; !ok {
		t.Error("BiCGSTAB missing on a dominant nonsymmetric system")
	}
	// CG on a nonsymmetric system either breaks down or is absent; it must
	// not be reported as the only solver.
	if len(s2.Cost) == 1 {
		if _, only := s2.Cost[SolverCG]; only {
			t.Error("CG reported as sole solver for a nonsymmetric system")
		}
	}
}

func TestCollectOneRejectsNonSquare(t *testing.T) {
	a, err := sparse.FromDense(2, 3, make([]float64, 6))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CollectOne("rect", a, DefaultRunOptions()); err == nil {
		t.Error("non-square accepted")
	}
}

func TestTrainDecideEvaluate(t *testing.T) {
	mats := mixedCorpus(t, 36, 2)
	samples := collectAll(t, mats, 3)
	p := gbt.DefaultParams()
	p.NumRounds = 40
	split := len(samples) * 3 / 4
	preds, err := Train(samples[:split], p, 4)
	if err != nil {
		t.Fatal(err)
	}
	ev := preds.Evaluate(samples[split:])
	if ev.Runs == 0 {
		t.Fatal("no evaluated runs")
	}
	if ev.CostRatio < 1-1e-9 {
		t.Errorf("cost ratio %.3f below 1 (impossible)", ev.CostRatio)
	}
	// The selector must beat or match the fixed-BiCGSTAB baseline.
	if ev.CostRatio > ev.BaselineRatio+0.05 {
		t.Errorf("selector ratio %.3f worse than fixed baseline %.3f", ev.CostRatio, ev.BaselineRatio)
	}
	if ev.Agreement <= 0.3 {
		t.Errorf("oracle agreement %.2f suspiciously low", ev.Agreement)
	}
}

func TestDecideRespectsValidity(t *testing.T) {
	mats := mixedCorpus(t, 20, 4)
	samples := collectAll(t, mats, 5)
	p := gbt.DefaultParams()
	p.NumRounds = 20
	preds, err := Train(samples, p, 3)
	if err != nil {
		t.Fatal(err)
	}
	feat := samples[0].Features
	sv, cost := preds.Decide(feat, func(s Solver) bool { return s == SolverGMRES })
	if sv != SolverGMRES {
		t.Errorf("validity-restricted decide chose %v", sv)
	}
	if math.IsInf(cost, 1) {
		t.Error("no cost predicted")
	}
	if sv, _ := preds.Decide(feat, func(Solver) bool { return false }); sv >= 0 {
		t.Errorf("empty validity set chose %v", sv)
	}
}

func TestTrainErrorsWithoutData(t *testing.T) {
	if _, err := Train(nil, gbt.DefaultParams(), 1); err == nil {
		t.Error("empty sample set accepted")
	}
}

func TestOracleBest(t *testing.T) {
	s := Sample{Cost: map[Solver]float64{SolverCG: 100, SolverGMRES: 50}}
	sv, c := OracleBest(&s)
	if sv != SolverGMRES || c != 50 {
		t.Errorf("OracleBest = %v/%g", sv, c)
	}
	empty := Sample{Cost: map[Solver]float64{}}
	if sv, _ := OracleBest(&empty); sv >= 0 {
		t.Errorf("OracleBest on empty = %v", sv)
	}
}

func TestSolverStrings(t *testing.T) {
	want := map[Solver]string{SolverCG: "CG", SolverBiCGSTAB: "BiCGSTAB", SolverGMRES: "GMRES", SolverJacobi: "Jacobi"}
	for sv, name := range want {
		if sv.String() != name {
			t.Errorf("%d.String() = %q", int(sv), sv.String())
		}
	}
	if Solver(99).String() == "" {
		t.Error("out-of-range String empty")
	}
}
