// Package solversel implements the paper's stated future-work direction
// (§VII): "selection of the best linear solvers for a given matrix", built
// with the same explicit overhead-conscious machinery as the format
// selector — per-candidate regression models over matrix features
// predicting a normalized total cost, an argmin decision, and a validity
// notion (CG requires SPD the way DIA requires diagonals).
//
// Cost is denominated in SpMV-call equivalents: each solver's total cost is
// its iteration count times its SpMV calls per iteration, which makes costs
// comparable across solvers and across matrices without wall-clock noise.
package solversel

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/apps"
	"repro/internal/features"
	"repro/internal/gbt"
	"repro/internal/sparse"
)

// Solver identifies a candidate iterative method.
type Solver int

// The candidate solvers. CG is valid only for SPD systems; the others
// handle general diagonally dominant ones.
const (
	SolverCG Solver = iota
	SolverBiCGSTAB
	SolverGMRES
	SolverJacobi
	numSolvers
)

// AllSolvers lists the candidates. The slice is shared; do not mutate.
var AllSolvers = []Solver{SolverCG, SolverBiCGSTAB, SolverGMRES, SolverJacobi}

var solverNames = [...]string{
	SolverCG:       "CG",
	SolverBiCGSTAB: "BiCGSTAB",
	SolverGMRES:    "GMRES",
	SolverJacobi:   "Jacobi",
}

// String returns the solver's display name.
func (s Solver) String() string {
	if s < 0 || int(s) >= len(solverNames) {
		return fmt.Sprintf("Solver(%d)", int(s))
	}
	return solverNames[s]
}

// spmvPerIter is each solver's SpMV calls per iteration.
func (s Solver) spmvPerIter() float64 {
	if s == SolverBiCGSTAB {
		return 2
	}
	return 1
}

// Sample is one matrix's training record: features plus the measured total
// cost (in SpMV calls) of every solver that converged.
type Sample struct {
	Name     string
	Features []float64
	// Cost[s] is iterations x SpMV-per-iteration; absent if the solver
	// failed (breakdown or non-convergence within the cap).
	Cost map[Solver]float64
}

// RunOptions controls the solver executions behind Collect.
type RunOptions struct {
	Tol      float64
	MaxIters int
	Restart  int
	Seed     int64
}

// DefaultRunOptions matches the format-selection experiments' settings.
func DefaultRunOptions() RunOptions {
	return RunOptions{Tol: 1e-8, MaxIters: 20000, Restart: 30, Seed: 1}
}

// CollectOne runs every candidate solver on one system and records costs.
func CollectOne(name string, a *sparse.CSR, opt RunOptions) (Sample, error) {
	n, cols := a.Dims()
	if n != cols {
		return Sample{}, fmt.Errorf("solversel: %q is %dx%d, want square", name, n, cols)
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	sopt := apps.SolveOptions{Tol: opt.Tol, MaxIters: opt.MaxIters, Restart: opt.Restart}
	s := Sample{
		Name:     name,
		Features: features.Extract(a).Vector(),
		Cost:     make(map[Solver]float64),
	}
	record := func(sv Solver, res apps.Result, err error) {
		if err != nil || !res.Converged || res.Iterations == 0 {
			return
		}
		s.Cost[sv] = float64(res.Iterations) * sv.spmvPerIter()
	}
	res, err := apps.CG(apps.Ser(a), b, sopt, nil)
	record(SolverCG, res, err)
	res, err = apps.BiCGSTAB(apps.Ser(a), b, sopt, nil)
	record(SolverBiCGSTAB, res, err)
	res, err = apps.GMRES(apps.Ser(a), b, sopt, nil)
	record(SolverGMRES, res, err)
	diag := a.Diag()
	jacobiOK := true
	for _, d := range diag {
		if d == 0 {
			jacobiOK = false
			break
		}
	}
	if jacobiOK {
		res, err = apps.Jacobi(apps.Ser(a), diag, b, 1.0, sopt, nil)
		record(SolverJacobi, res, err)
	}
	if len(s.Cost) == 0 {
		return Sample{}, fmt.Errorf("solversel: no solver converged on %q", name)
	}
	return s, nil
}

// Predictors is the trained bundle: one regression model per solver
// predicting log10 of the total cost (costs span orders of magnitude, so
// the log keeps the squared-loss fit balanced).
type Predictors struct {
	Models map[Solver]*gbt.Model
}

// Train fits per-solver cost models from the samples. Solvers with fewer
// than minSamples converged runs are skipped (never selected).
func Train(samples []Sample, p gbt.Params, minSamples int) (*Predictors, error) {
	if minSamples < 1 {
		minSamples = 1
	}
	out := &Predictors{Models: make(map[Solver]*gbt.Model)}
	for _, sv := range AllSolvers {
		ds := &gbt.Dataset{}
		for _, s := range samples {
			if c, ok := s.Cost[sv]; ok {
				ds.X = append(ds.X, s.Features)
				ds.Y = append(ds.Y, math.Log10(c))
			}
		}
		if len(ds.Y) < minSamples {
			continue
		}
		m, err := gbt.Train(ds, nil, p)
		if err != nil {
			return nil, fmt.Errorf("solversel: training %v model: %w", sv, err)
		}
		out.Models[sv] = m
	}
	if len(out.Models) == 0 {
		return nil, fmt.Errorf("solversel: no solver had >= %d samples", minSamples)
	}
	return out, nil
}

// Decide predicts the cheapest solver for a matrix with the given features.
// valid restricts the candidates (e.g. drop CG for a non-SPD system); nil
// means all trained solvers.
func (p *Predictors) Decide(feat []float64, valid func(Solver) bool) (Solver, float64) {
	best := Solver(-1)
	bestCost := math.Inf(1)
	for _, sv := range AllSolvers {
		m, ok := p.Models[sv]
		if !ok {
			continue
		}
		if valid != nil && !valid(sv) {
			continue
		}
		if c := math.Pow(10, m.Predict(feat)); c < bestCost {
			bestCost = c
			best = sv
		}
	}
	return best, bestCost
}

// OracleBest returns the truly cheapest converged solver of a sample.
func OracleBest(s *Sample) (Solver, float64) {
	best := Solver(-1)
	bestCost := math.Inf(1)
	for _, sv := range AllSolvers {
		if c, ok := s.Cost[sv]; ok && c < bestCost {
			bestCost = c
			best = sv
		}
	}
	return best, bestCost
}

// Evaluation summarizes out-of-sample selection quality.
type Evaluation struct {
	// Runs is the number of evaluated systems.
	Runs int
	// Agreement is the fraction where the predicted solver is the oracle
	// best.
	Agreement float64
	// CostRatio is the geometric mean of (cost of chosen solver) / (cost
	// of oracle best); 1.0 is perfect.
	CostRatio float64
	// BaselineRatio is the same ratio for the fixed-default strategy of
	// always using BiCGSTAB (the general-purpose safe pick).
	BaselineRatio float64
	// Chosen counts how often each solver was selected.
	Chosen map[Solver]int
}

// Evaluate scores the predictors on held-out samples. The validity rule
// mirrors deployment: a solver is a candidate only if it converged for the
// sample (an invalid pick falls back to its own measured cost when present,
// otherwise it is charged the worst observed cost of that system).
func (p *Predictors) Evaluate(samples []Sample) Evaluation {
	ev := Evaluation{Chosen: make(map[Solver]int)}
	var agree int
	var logSum, baseLogSum float64
	for i := range samples {
		s := &samples[i]
		oracle, oracleCost := OracleBest(s)
		if oracle < 0 {
			continue
		}
		ev.Runs++
		chosen, _ := p.Decide(s.Features, func(sv Solver) bool {
			_, ok := s.Cost[sv]
			return ok
		})
		if chosen < 0 {
			chosen = oracle
		}
		ev.Chosen[chosen]++
		if chosen == oracle {
			agree++
		}
		logSum += math.Log(s.Cost[chosen] / oracleCost)

		baseCost, ok := s.Cost[SolverBiCGSTAB]
		if !ok {
			baseCost = worstCost(s)
		}
		baseLogSum += math.Log(baseCost / oracleCost)
	}
	if ev.Runs > 0 {
		ev.Agreement = float64(agree) / float64(ev.Runs)
		ev.CostRatio = math.Exp(logSum / float64(ev.Runs))
		ev.BaselineRatio = math.Exp(baseLogSum / float64(ev.Runs))
	}
	return ev
}

func worstCost(s *Sample) float64 {
	worst := 0.0
	for _, c := range s.Cost {
		if c > worst {
			worst = c
		}
	}
	return worst
}
