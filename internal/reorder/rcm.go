// Package reorder implements the reverse Cuthill-McKee (RCM) bandwidth-
// reducing permutation. Reordering interacts directly with format
// selection: a matrix whose nonzeros scatter far from the diagonal may
// reject DIA or band-friendly layouts outright, while its RCM-permuted
// twin accepts them — so a selector that can also consider "reorder first"
// has a strictly larger decision space. The A5 experiment quantifies this.
package reorder

import (
	"fmt"
	"sort"

	"repro/internal/sparse"
)

// RCM computes the reverse Cuthill-McKee ordering of the symmetrized
// pattern of a square matrix. The returned perm maps new index -> old
// index. Disconnected components are each started from a pseudo-peripheral
// vertex found by repeated BFS.
func RCM(a *sparse.CSR) ([]int32, error) {
	rows, cols := a.Dims()
	if rows != cols {
		return nil, fmt.Errorf("reorder: RCM needs a square matrix, got %dx%d", rows, cols)
	}
	n := rows
	adj, deg := symmetricAdjacency(a)

	visited := make([]bool, n)
	order := make([]int32, 0, n)
	queue := make([]int32, 0, n)
	for start := 0; start < n; start++ {
		if visited[start] {
			continue
		}
		root := pseudoPeripheral(int32(start), adj, deg, n)
		// Cuthill-McKee BFS from root, neighbors by ascending degree.
		visited[root] = true
		queue = append(queue[:0], root)
		for qi := 0; qi < len(queue); qi++ {
			v := queue[qi]
			order = append(order, v)
			nbrs := neighbors(adj, v)
			// Sort the unvisited neighbors by degree (stable by index).
			cand := make([]int32, 0, len(nbrs))
			for _, u := range nbrs {
				if !visited[u] {
					visited[u] = true
					cand = append(cand, u)
				}
			}
			sort.Slice(cand, func(x, y int) bool {
				if deg[cand[x]] != deg[cand[y]] {
					return deg[cand[x]] < deg[cand[y]]
				}
				return cand[x] < cand[y]
			})
			queue = append(queue, cand...)
		}
	}
	// Reverse for RCM.
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	return order, nil
}

// adjacency is a CSR-like structure over the symmetrized pattern.
type adjacency struct {
	ptr []int
	idx []int32
}

func neighbors(adj *adjacency, v int32) []int32 {
	return adj.idx[adj.ptr[v]:adj.ptr[v+1]]
}

// symmetricAdjacency builds the pattern of A + A^T without self loops.
func symmetricAdjacency(a *sparse.CSR) (*adjacency, []int32) {
	n, _ := a.Dims()
	at := a.Transpose()
	counts := make([]int, n+1)
	// Upper bound: row of A plus row of A^T.
	for i := 0; i < n; i++ {
		counts[i+1] = (a.Ptr[i+1] - a.Ptr[i]) + (at.Ptr[i+1] - at.Ptr[i])
	}
	for i := 0; i < n; i++ {
		counts[i+1] += counts[i]
	}
	idx := make([]int32, counts[n])
	ptr := make([]int, n+1)
	deg := make([]int32, n)
	pos := 0
	for i := 0; i < n; i++ {
		ptr[i] = pos
		// Merge the two sorted neighbor lists, dropping duplicates and i.
		p, q := a.Ptr[i], at.Ptr[i]
		pe, qe := a.Ptr[i+1], at.Ptr[i+1]
		prev := int32(-1)
		emit := func(c int32) {
			if c != int32(i) && c != prev {
				idx[pos] = c
				pos++
				prev = c
			}
		}
		for p < pe || q < qe {
			switch {
			case p >= pe:
				emit(at.Col[q])
				q++
			case q >= qe:
				emit(a.Col[p])
				p++
			case a.Col[p] < at.Col[q]:
				emit(a.Col[p])
				p++
			case a.Col[p] > at.Col[q]:
				emit(at.Col[q])
				q++
			default:
				emit(a.Col[p])
				p++
				q++
			}
		}
		deg[i] = int32(pos - ptr[i])
	}
	ptr[n] = pos
	return &adjacency{ptr: ptr, idx: idx[:pos]}, deg
}

// pseudoPeripheral finds a vertex of (locally) maximal eccentricity in the
// component of start by the usual repeated-BFS heuristic.
func pseudoPeripheral(start int32, adj *adjacency, deg []int32, n int) int32 {
	level := make([]int32, n)
	cur := start
	curEcc := int32(-1)
	for iter := 0; iter < 8; iter++ {
		for i := range level {
			level[i] = -1
		}
		last, ecc := bfsLevels(cur, adj, deg, level)
		if ecc <= curEcc {
			break
		}
		curEcc = ecc
		cur = last
	}
	return cur
}

// bfsLevels runs BFS from root, returning a min-degree vertex of the last
// level and the eccentricity.
func bfsLevels(root int32, adj *adjacency, deg []int32, level []int32) (int32, int32) {
	level[root] = 0
	queue := []int32{root}
	lastLevel := int32(0)
	best := root
	for qi := 0; qi < len(queue); qi++ {
		v := queue[qi]
		for _, u := range neighbors(adj, v) {
			if level[u] < 0 {
				level[u] = level[v] + 1
				if level[u] > lastLevel {
					lastLevel = level[u]
					best = u
				} else if level[u] == lastLevel && deg[u] < deg[best] {
					best = u
				}
				queue = append(queue, u)
			}
		}
	}
	return best, lastLevel
}

// Apply permutes a square matrix symmetrically: B = P A P^T where row i of
// B is row perm[i] of A (perm maps new -> old).
func Apply(a *sparse.CSR, perm []int32) (*sparse.CSR, error) {
	rows, cols := a.Dims()
	if rows != cols {
		return nil, fmt.Errorf("reorder: Apply needs a square matrix, got %dx%d", rows, cols)
	}
	if len(perm) != rows {
		return nil, fmt.Errorf("reorder: permutation length %d for %d rows", len(perm), rows)
	}
	inv := make([]int32, rows)
	seen := make([]bool, rows)
	for newIdx, old := range perm {
		if old < 0 || int(old) >= rows || seen[old] {
			return nil, fmt.Errorf("reorder: invalid permutation at %d", newIdx)
		}
		seen[old] = true
		inv[old] = int32(newIdx)
	}
	ptr := make([]int, rows+1)
	for newIdx, old := range perm {
		ptr[newIdx+1] = a.Ptr[old+1] - a.Ptr[old]
	}
	for i := 0; i < rows; i++ {
		ptr[i+1] += ptr[i]
	}
	nnz := a.NNZ()
	col := make([]int32, nnz)
	data := make([]float64, nnz)
	// Fill each new row with remapped, re-sorted columns.
	type ent struct {
		c int32
		v float64
	}
	var buf []ent
	for newIdx, old := range perm {
		lo, hi := a.Ptr[old], a.Ptr[old+1]
		buf = buf[:0]
		for k := lo; k < hi; k++ {
			buf = append(buf, ent{inv[a.Col[k]], a.Data[k]})
		}
		sort.Slice(buf, func(x, y int) bool { return buf[x].c < buf[y].c })
		base := ptr[newIdx]
		for j, e := range buf {
			col[base+j] = e.c
			data[base+j] = e.v
		}
	}
	return sparse.NewCSR(rows, cols, ptr, col, data)
}

// Bandwidth returns the maximum |i - j| over stored entries (0 for empty).
func Bandwidth(a *sparse.CSR) int {
	rows, _ := a.Dims()
	bw := 0
	for i := 0; i < rows; i++ {
		for k := a.Ptr[i]; k < a.Ptr[i+1]; k++ {
			d := int(a.Col[k]) - i
			if d < 0 {
				d = -d
			}
			if d > bw {
				bw = d
			}
		}
	}
	return bw
}
