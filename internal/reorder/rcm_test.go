package reorder

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/matgen"
	"repro/internal/sparse"
	"repro/internal/vec"
)

func TestRCMReducesBandwidthOnShuffledStencil(t *testing.T) {
	// A stencil has a tight band; shuffling destroys it; RCM must recover
	// most of it.
	orig, err := matgen.Stencil2D(30)
	if err != nil {
		t.Fatal(err)
	}
	n, _ := orig.Dims()
	rng := rand.New(rand.NewSource(1))
	shufflePerm := make([]int32, n)
	for i, p := range rng.Perm(n) {
		shufflePerm[i] = int32(p)
	}
	shuffled, err := Apply(orig, shufflePerm)
	if err != nil {
		t.Fatal(err)
	}
	bwShuffled := Bandwidth(shuffled)
	perm, err := RCM(shuffled)
	if err != nil {
		t.Fatal(err)
	}
	recovered, err := Apply(shuffled, perm)
	if err != nil {
		t.Fatal(err)
	}
	bwRCM := Bandwidth(recovered)
	if bwRCM >= bwShuffled/4 {
		t.Errorf("RCM bandwidth %d vs shuffled %d: insufficient reduction", bwRCM, bwShuffled)
	}
}

func TestApplyPreservesSpectrumAction(t *testing.T) {
	// B = P A P^T must satisfy B (P x) = P (A x).
	rng := rand.New(rand.NewSource(2))
	a, err := matgen.Random(80, 80, 5, rng)
	if err != nil {
		t.Fatal(err)
	}
	perm, err := RCM(a)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Apply(a, perm)
	if err != nil {
		t.Fatal(err)
	}
	n, _ := a.Dims()
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	// px[new] = x[perm[new]]
	px := make([]float64, n)
	for newIdx, old := range perm {
		px[newIdx] = x[old]
	}
	ax := make([]float64, n)
	a.SpMV(ax, x)
	pax := make([]float64, n)
	for newIdx, old := range perm {
		pax[newIdx] = ax[old]
	}
	bpx := make([]float64, n)
	b.SpMV(bpx, px)
	for i := range bpx {
		if d := bpx[i] - pax[i]; d > 1e-12 || d < -1e-12 {
			t.Fatalf("B(Px) != P(Ax) at %d: %g vs %g", i, bpx[i], pax[i])
		}
	}
	_ = vec.Nrm2 // keep the import for future assertions
}

func TestRCMIsPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, fam := range []matgen.Family{matgen.FamRandom, matgen.FamPowerLaw, matgen.FamBlock} {
		m, err := matgen.Generate(matgen.Spec{Name: fam.String(), Family: fam, Size: 300, Degree: 6, Seed: rng.Int63()})
		if err != nil {
			t.Fatal(err)
		}
		perm, err := RCM(m)
		if err != nil {
			t.Fatal(err)
		}
		n, _ := m.Dims()
		if len(perm) != n {
			t.Fatalf("%v: perm length %d, want %d", fam, len(perm), n)
		}
		seen := make([]bool, n)
		for _, p := range perm {
			if p < 0 || int(p) >= n || seen[p] {
				t.Fatalf("%v: not a permutation", fam)
			}
			seen[p] = true
		}
	}
}

func TestRCMHandlesDisconnectedAndEmpty(t *testing.T) {
	// Block-diagonal with two components plus isolated vertices.
	dense := []float64{
		1, 1, 0, 0, 0,
		1, 1, 0, 0, 0,
		0, 0, 0, 0, 0, // isolated
		0, 0, 0, 1, 1,
		0, 0, 0, 1, 1,
	}
	a, err := sparse.FromDense(5, 5, dense)
	if err != nil {
		t.Fatal(err)
	}
	perm, err := RCM(a)
	if err != nil {
		t.Fatal(err)
	}
	if len(perm) != 5 {
		t.Fatalf("perm covers %d of 5", len(perm))
	}
	empty, err := sparse.NewCSR(3, 3, make([]int, 4), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RCM(empty); err != nil {
		t.Fatalf("empty matrix: %v", err)
	}
}

func TestRCMRejectsNonSquare(t *testing.T) {
	a, err := sparse.FromDense(2, 3, make([]float64, 6))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RCM(a); err == nil {
		t.Error("non-square accepted")
	}
	if _, err := Apply(a, []int32{0, 1}); err == nil {
		t.Error("Apply accepted non-square")
	}
}

func TestApplyValidation(t *testing.T) {
	a, err := matgen.Stencil2D(5)
	if err != nil {
		t.Fatal(err)
	}
	n, _ := a.Dims()
	bad := make([]int32, n)
	if _, err := Apply(a, bad[:n-1]); err == nil {
		t.Error("short permutation accepted")
	}
	for i := range bad {
		bad[i] = 0 // duplicate
	}
	if _, err := Apply(a, bad); err == nil {
		t.Error("duplicate permutation accepted")
	}
}

func TestQuickApplyRoundTrip(t *testing.T) {
	cfg := &quick.Config{MaxCount: 20, Rand: rand.New(rand.NewSource(4))}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(100) + 10
		a, err := matgen.Random(n, n, 4, rng)
		if err != nil {
			return false
		}
		perm, err := RCM(a)
		if err != nil {
			return false
		}
		b, err := Apply(a, perm)
		if err != nil {
			return false
		}
		// Applying the inverse permutation must restore A.
		inv := make([]int32, n)
		for newIdx, old := range perm {
			inv[old] = int32(newIdx)
		}
		back, err := Apply(b, inv)
		if err != nil {
			return false
		}
		eq, err := sparse.EqualValues(a, back, 0)
		return err == nil && eq
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}
