package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/matgen"
	"repro/internal/solversel"
	"repro/internal/sparse"
)

// ---------------------------------------------------------------------------
// E12 — solver selection (the paper's §VII future-work direction), built
// with the same explicit-cost machinery: per-solver regressors over Table I
// features, validity handling (CG needs SPD), and an argmin decision.

// SolverSelReport is the evaluation of the solver selector.
type SolverSelReport struct {
	TrainRuns, EvalRuns int
	Eval                solversel.Evaluation
}

// RunSolverSel builds a mixed SPD/nonsymmetric corpus, measures every
// candidate solver on each system, trains the per-solver cost models on a
// 75% split and evaluates on the rest.
func (c *Context) RunSolverSel() (*SolverSelReport, error) {
	count := c.Opt.TrainCount/2 + c.Opt.EvalCount/2
	if count < 16 {
		count = 16
	}
	rng := rand.New(rand.NewSource(c.Opt.Seed + 11))
	var samples []solversel.Sample
	opt := solversel.DefaultRunOptions()
	for i := 0; i < count; i++ {
		size := c.Opt.MinSize + rng.Intn(c.Opt.MaxSize-c.Opt.MinSize+1)
		var m *sparse.CSR
		var err error
		// Three regimes so the oracle-best solver genuinely varies:
		// stencils (weakly dominant SPD: Krylov methods crush Jacobi),
		// strongly dominant SPD randoms (Jacobi's near-diagonal sweet
		// spot), and nonsymmetric dominants (CG invalid).
		switch i % 3 {
		case 0:
			m, err = matgen.Generate(matgen.Spec{
				Name: "stencil", Family: matgen.FamStencil2D, Size: size, Seed: rng.Int63(),
			})
		case 1:
			var base *sparse.CSR
			base, err = matgen.Random(size, size, 4+rng.Intn(8), rng)
			if err == nil {
				m, err = matgen.MakeSPD(base)
			}
		default:
			var base *sparse.CSR
			base, err = matgen.Random(size, size, 4+rng.Intn(8), rng)
			if err == nil {
				m, err = matgen.MakeDominant(base, 0.02+rng.Float64()*0.2)
			}
		}
		if err != nil {
			return nil, err
		}
		opt.Seed = rng.Int63()
		s, err := solversel.CollectOne(fmt.Sprintf("sys-%03d", i), m, opt)
		if err != nil {
			continue
		}
		samples = append(samples, s)
	}
	if len(samples) < 12 {
		return nil, fmt.Errorf("experiments: only %d usable solver systems", len(samples))
	}
	split := len(samples) * 3 / 4
	preds, err := solversel.Train(samples[:split], c.Opt.Params, 4)
	if err != nil {
		return nil, err
	}
	return &SolverSelReport{
		TrainRuns: split,
		EvalRuns:  len(samples) - split,
		Eval:      preds.Evaluate(samples[split:]),
	}, nil
}

// Render prints the report.
func (r *SolverSelReport) Render() string {
	var chosen string
	for _, sv := range solversel.AllSolvers {
		if n := r.Eval.Chosen[sv]; n > 0 {
			chosen += fmt.Sprintf("  %v: %d", sv, n)
		}
	}
	return fmt.Sprintf(`Solver selection (the paper's §VII future-work direction)
systems: %d train / %d eval
oracle agreement: %.0f%%
cost vs oracle best: %.3fx (fixed-BiCGSTAB baseline: %.3fx)
selected:%s
`, r.TrainRuns, r.EvalRuns,
		100*r.Eval.Agreement, r.Eval.CostRatio, r.Eval.BaselineRatio, chosen)
}
