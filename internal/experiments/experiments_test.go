package experiments

import (
	"strings"
	"testing"

	"repro/internal/sparse"
	"repro/internal/timing"
)

// testContext builds a small, fast context on the model oracle, shared by
// all tests in the package (the build costs ~1s; the cache amortizes it).
var sharedCtx *Context

func ctx(t testing.TB) *Context {
	t.Helper()
	if sharedCtx != nil {
		return sharedCtx
	}
	opt := DefaultOptions()
	opt.TrainCount = 64
	opt.EvalCount = 32
	opt.MinSize = 400
	opt.MaxSize = 3000
	opt.Params.NumRounds = 40
	c, err := NewContext(opt, timing.NewModelOracle())
	if err != nil {
		t.Fatal(err)
	}
	sharedCtx = c
	return c
}

func TestNewContextValidation(t *testing.T) {
	if _, err := NewContext(Options{}, timing.NewModelOracle()); err == nil {
		t.Error("empty options accepted")
	}
}

func TestTable3ConversionCostRegime(t *testing.T) {
	c := ctx(t)
	t3 := c.RunTable3()
	if len(t3.Rows) < 4 {
		t.Fatalf("only %d formats in Table III", len(t3.Rows))
	}
	for _, r := range t3.Rows {
		if r.Min <= 0 || r.Median < r.Min || r.Max < r.Median {
			t.Errorf("%v: broken distribution %g/%g/%g", r.Format, r.Min, r.Median, r.Max)
		}
		// The paper's regime: conversions cost many SpMV calls.
		if r.Median < 2 {
			t.Errorf("%v: median conversion %.1f SpMV calls, implausibly cheap", r.Format, r.Median)
		}
	}
	if !strings.Contains(t3.Render(), "Table III") {
		t.Error("render missing title")
	}
}

func TestTable4DistributionShifts(t *testing.T) {
	c := ctx(t)
	t4 := c.RunTable4()
	// The whole point of Table IV: the OO distribution differs from the OC
	// ones, and OC(100) favors CSR more than OO does.
	totalOO := 0
	for _, n := range t4.OO {
		totalOO += n
	}
	if totalOO != len(c.EvalSamples) {
		t.Fatalf("OO counts %d, want %d", totalOO, len(c.EvalSamples))
	}
	if t4.OC[100][sparse.FmtCSR] < t4.OO[sparse.FmtCSR] {
		t.Errorf("OC(100) favors CSR for %d matrices, OO for %d; overhead should push toward CSR",
			t4.OC[100][sparse.FmtCSR], t4.OO[sparse.FmtCSR])
	}
	// With more iterations the conversion amortizes: CSR count must not grow.
	if t4.OC[1000][sparse.FmtCSR] > t4.OC[100][sparse.FmtCSR] {
		t.Errorf("OC CSR count grew with iterations: %d -> %d",
			t4.OC[100][sparse.FmtCSR], t4.OC[1000][sparse.FmtCSR])
	}
	_ = t4.Render()
}

func TestFig5Shape(t *testing.T) {
	c := ctx(t)
	f5 := c.RunFig5()
	if err := f5.CheckShape(); err != nil {
		t.Fatalf("%v\n%s", err, f5.Render())
	}
	// Speedups should grow (or at least not fall) with iteration count for
	// the OC schemes.
	for i := 1; i < len(f5.Points); i++ {
		if f5.Points[i].UBOC < f5.Points[i-1].UBOC-0.05 {
			t.Errorf("UB_OC fell from %.3f to %.3f between %g and %g iters",
				f5.Points[i-1].UBOC, f5.Points[i].UBOC,
				f5.Points[i-1].Iters, f5.Points[i].Iters)
		}
	}
}

func TestTable5PredictionErrors(t *testing.T) {
	c := ctx(t)
	t5, err := c.RunTable5()
	if err != nil {
		t.Fatal(err)
	}
	if len(t5.Rows) < 4 {
		t.Fatalf("only %d formats evaluated", len(t5.Rows))
	}
	for _, r := range t5.Rows {
		// The paper reports ~8-18% errors; on the smooth model oracle our
		// models should stay well under 60% even with the small corpus.
		if r.SpMVError > 0.6 || r.ConvError > 0.6 {
			t.Errorf("%v: CV errors conv=%.1f%% spmv=%.1f%%", r.Format, 100*r.ConvError, 100*r.SpMVError)
		}
	}
	_ = t5.Render()
}

func TestTable6HeadlineShape(t *testing.T) {
	c := ctx(t)
	t6, err := c.RunTable6()
	if err != nil {
		t.Fatal(err)
	}
	if err := t6.CheckShape(); err != nil {
		t.Fatalf("%v\n%s", err, t6.Render())
	}
	if len(t6.Rows) != 4 {
		t.Fatalf("%d app rows", len(t6.Rows))
	}
}

func TestTable7FormatsSumToRuns(t *testing.T) {
	c := ctx(t)
	t7, err := c.RunTable7()
	if err != nil {
		t.Fatal(err)
	}
	for _, app := range t7.Apps {
		sim, err := c.RunApp(app)
		if err != nil {
			t.Fatal(err)
		}
		oo, oc := 0, 0
		for _, n := range t7.OO[app] {
			oo += n
		}
		for _, n := range t7.OC[app] {
			oc += n
		}
		if oo != len(sim.Outcomes) || oc != len(sim.Outcomes) {
			t.Errorf("%v: OO %d, OC %d, runs %d", app, oo, oc, len(sim.Outcomes))
		}
	}
	_ = t7.Render()
}

func TestFig2VsFig6SlowdownAvoidance(t *testing.T) {
	c := ctx(t)
	f2, err := c.RunFig2()
	if err != nil {
		t.Fatal(err)
	}
	f6, err := c.RunFig6()
	if err != nil {
		t.Fatal(err)
	}
	ooSlow := f2.SlowdownFraction(0.95)
	ocSlow := f6.SlowdownFraction(0.95)
	// Figure 2's point: OO causes real slowdowns. Figure 6's: OC avoids
	// the severe ones (the residual sub-1 cases are the mild cost of a
	// stage-2 prediction that decided to stay on CSR).
	if ooSlow == 0 {
		t.Errorf("OO selection produced no slowdowns at all; conversion overhead not biting\n%s", f2.Render())
	}
	if ocSlow > ooSlow {
		t.Errorf("OC slowdown fraction %.2f exceeds OO's %.2f", ocSlow, ooSlow)
	}
	if severe := f6.SlowdownFraction(0.75); severe > 0 {
		t.Errorf("OC produced severe slowdowns (fraction %.2f below 0.75x)\n%s", severe, f6.Render())
	}
	if f6.Minimum < 0.8 {
		t.Errorf("OC worst case %.3f, want >= 0.8\n%s", f6.Minimum, f6.Render())
	}
	if f2.Minimum > 0.75 {
		t.Errorf("OO worst case %.3f, expected a severe slowdown tail\n%s", f2.Minimum, f2.Render())
	}
}

func TestStage1Report(t *testing.T) {
	c := ctx(t)
	rep, err := c.RunStage1()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 4 {
		t.Fatalf("%d rows", len(rep.Rows))
	}
	for _, r := range rep.Rows {
		if r.Runs == 0 {
			t.Errorf("%v: stage 1 never ran", r.App)
			continue
		}
		if r.GateAccuracy < 0.5 {
			t.Errorf("%v: gate accuracy %.0f%%, worse than chance", r.App, 100*r.GateAccuracy)
		}
		if r.MeanRelError < 0 {
			t.Errorf("%v: negative error", r.App)
		}
	}
	_ = rep.Render()
}

func TestTable8CaseStudies(t *testing.T) {
	c := ctx(t)
	t8, err := c.RunTable8()
	if err != nil {
		t.Fatal(err)
	}
	if len(t8.Rows) < 3 {
		t.Fatalf("only %d case studies", len(t8.Rows))
	}
	for _, r := range t8.Rows {
		if r.NNZ <= 0 || r.Iters <= 0 {
			t.Errorf("%s: NNZ %d iters %d", r.Name, r.NNZ, r.Iters)
		}
		if r.SpeedupOC <= 0 || r.SpeedupOO <= 0 {
			t.Errorf("%s: speedups %g/%g", r.Name, r.SpeedupOO, r.SpeedupOC)
		}
	}
	_ = t8.Render()
}

func TestOverheadReport(t *testing.T) {
	c := ctx(t)
	r := c.RunOverhead()
	if r.FeatureMin <= 0 || r.FeatureMedian < r.FeatureMin || r.FeatureMax < r.FeatureMedian {
		t.Errorf("feature overhead distribution broken: %g/%g/%g", r.FeatureMin, r.FeatureMedian, r.FeatureMax)
	}
	// Paper band: 2x-4x of a SpMV call; allow 1-10x for our kernels.
	if r.FeatureMedian < 1 || r.FeatureMedian > 10 {
		t.Errorf("median feature overhead %.1fx SpMV, outside [1, 10]", r.FeatureMedian)
	}
	_ = r.Render()
}

func TestAblationImplicit(t *testing.T) {
	c := ctx(t)
	a, err := c.RunAblationImplicit()
	if err != nil {
		t.Fatal(err)
	}
	if a.ExplicitAgreement <= 0 || a.ExplicitAgreement > 1 {
		t.Errorf("explicit agreement %g", a.ExplicitAgreement)
	}
	if a.ImplicitAgreement <= 0 || a.ImplicitAgreement > 1 {
		t.Errorf("implicit agreement %g", a.ImplicitAgreement)
	}
	// The explicit design is the paper's choice; it should not lose badly.
	if a.ExplicitSpeedup < a.ImplicitSpeedup-0.1 {
		t.Errorf("explicit speedup %.3f far below implicit %.3f", a.ExplicitSpeedup, a.ImplicitSpeedup)
	}
	_ = a.Render()
}

func TestAblationGate(t *testing.T) {
	c := ctx(t)
	a, err := c.RunAblationGate(1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Rows) != 4 {
		t.Fatalf("%d rows", len(a.Rows))
	}
	for _, r := range a.Rows {
		if r.Gated <= 0 || r.Ungated <= 0 {
			t.Errorf("%v: speedups %g/%g", r.App, r.Gated, r.Ungated)
		}
		// The gate exists to bound the worst case.
		if r.GatedWorst < r.UngatedWorst-0.05 {
			t.Errorf("%v: gated worst %.3f below ungated worst %.3f", r.App, r.GatedWorst, r.UngatedWorst)
		}
	}
	_ = a.Render()
}

func TestAblationNormalize(t *testing.T) {
	c := ctx(t)
	a, err := c.RunAblationNormalize()
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Rows) < 4 {
		t.Fatalf("%d rows", len(a.Rows))
	}
	for _, r := range a.Rows {
		if r.NormalizedErr <= 0 || r.AbsoluteErr <= 0 {
			t.Errorf("%v: errors %g/%g", r.Format, r.NormalizedErr, r.AbsoluteErr)
		}
	}
	_ = a.Render()
}

func TestRendersAreNonEmpty(t *testing.T) {
	c := ctx(t)
	t3 := c.RunTable3()
	if len(t3.Render()) < 50 {
		t.Error("Table3 render too short")
	}
	f5 := c.RunFig5(10, 100)
	if !strings.Contains(f5.Render(), "SpeedupOC") {
		t.Error("Fig5 render missing column")
	}
	ov := c.RunOverhead()
	if !strings.Contains(ov.Render(), "feature extraction") {
		t.Error("overhead render missing line")
	}
}

func TestAblationSELL(t *testing.T) {
	c := ctx(t)
	a := c.RunAblationSELL()
	if len(a.Rows) == 0 {
		t.Fatal("no rows")
	}
	for _, r := range a.Rows {
		if r.ExtendedPool < r.PaperPool-1e-9 {
			t.Errorf("iters=%g: extended pool %.3f worse than paper pool %.3f",
				r.Iters, r.ExtendedPool, r.PaperPool)
		}
		if r.PaperPool <= 0 {
			t.Errorf("iters=%g: paper pool speedup %g", r.Iters, r.PaperPool)
		}
	}
	_ = a.Render()
}

func TestCSVRenders(t *testing.T) {
	c := ctx(t)
	if out := c.RunTable3().CSV(); !strings.HasPrefix(out, "format,") {
		t.Errorf("Table3 CSV header: %q", out[:20])
	}
	f5 := c.RunFig5(10, 100)
	if out := f5.CSV(); !strings.HasPrefix(out, "iters,") || strings.Count(out, "\n") != 3 {
		t.Errorf("Fig5 CSV: %q", out)
	}
	t6, err := c.RunTable6()
	if err != nil {
		t.Fatal(err)
	}
	if out := t6.CSV(); strings.Count(out, "\n") != 5 {
		t.Errorf("Table6 CSV rows: %q", out)
	}
	h, err := c.RunFig2()
	if err != nil {
		t.Fatal(err)
	}
	if out := h.CSV(); !strings.Contains(out, "inf") {
		t.Errorf("Histogram CSV missing inf bucket: %q", out)
	}
	t5, err := c.RunTable5()
	if err != nil {
		t.Fatal(err)
	}
	if out := t5.CSV(); !strings.HasPrefix(out, "format,") {
		t.Errorf("Table5 CSV: %q", out[:20])
	}
}

func TestAblationReorder(t *testing.T) {
	c := ctx(t)
	a, err := c.RunAblationReorder()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range a.Rows {
		if r.WithReorder < r.FormatsOnly-1e-9 {
			t.Errorf("iters=%g: reorder option made things worse: %.3f vs %.3f",
				r.Iters, r.WithReorder, r.FormatsOnly)
		}
		if r.ReorderWins < 0 || r.DIAUnlocked < 0 {
			t.Errorf("iters=%g: negative counts", r.Iters)
		}
	}
	_ = a.Render()
}

func TestSolverSelection(t *testing.T) {
	c := ctx(t)
	r, err := c.RunSolverSel()
	if err != nil {
		t.Fatal(err)
	}
	if r.EvalRuns == 0 {
		t.Fatal("no evaluation runs")
	}
	if r.Eval.CostRatio < 1-1e-9 {
		t.Errorf("cost ratio %.3f below 1", r.Eval.CostRatio)
	}
	if r.Eval.CostRatio > r.Eval.BaselineRatio+0.1 {
		t.Errorf("selector %.3f worse than fixed baseline %.3f", r.Eval.CostRatio, r.Eval.BaselineRatio)
	}
	_ = r.Render()
}
