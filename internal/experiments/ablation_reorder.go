package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/matgen"
	"repro/internal/reorder"
	"repro/internal/sparse"
	"repro/internal/trainer"
)

// hiddenBandCorpus generates banded matrices whose rows/columns have been
// symmetrically shuffled: band structure exists but is invisible until a
// bandwidth-reducing reordering recovers it.
func hiddenBandCorpus(seed int64, count, minSize, maxSize int) ([]*sparse.CSR, error) {
	rng := rand.New(rand.NewSource(seed))
	out := make([]*sparse.CSR, 0, count)
	for i := 0; i < count; i++ {
		size := minSize + rng.Intn(maxSize-minSize+1)
		banded, err := matgen.Banded(size, 2+rng.Intn(5), rng)
		if err != nil {
			return nil, err
		}
		n, _ := banded.Dims()
		perm := make([]int32, n)
		for j, p := range rng.Perm(n) {
			perm[j] = int32(p)
		}
		shuffled, err := reorder.Apply(banded, perm)
		if err != nil {
			return nil, err
		}
		out = append(out, shuffled)
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// A5 — reordering as part of the decision space.
//
// Bandwidth-reducing reordering (RCM) changes which formats a matrix can
// even use: a scattered matrix may reject DIA outright while its permuted
// twin accepts it. This ablation extends the oracle overhead-conscious
// decision with a "reorder first, then pick a format" option whose
// reordering cost is charged like a conversion, and measures how often and
// by how much the larger decision space wins.

// reorderOpsPerNNZ models the cost of RCM + symmetric permutation in
// element-ops per nonzero (graph BFS with degree sorting plus a full
// rebuild), charged against the matrix's CSR SpMV time.
const reorderOpsPerNNZ = 50

// AblationReorderRow is one loop-length comparison.
type AblationReorderRow struct {
	Iters float64
	// FormatsOnly / WithReorder are geometric-mean realized speedups of
	// the oracle-OC decision without and with the reorder option.
	FormatsOnly, WithReorder float64
	// ReorderWins counts matrices where the reorder branch is chosen.
	ReorderWins int
	// DIAUnlocked counts matrices where DIA is valid only after RCM.
	DIAUnlocked int
}

// AblationReorder is the reordering ablation result.
type AblationReorder struct {
	Rows []AblationReorderRow
}

// RunAblationReorder evaluates the extended decision space on the
// evaluation corpus (square matrices only).
func (c *Context) RunAblationReorder(iters ...float64) (*AblationReorder, error) {
	if len(iters) == 0 {
		iters = []float64{100, 1000, 5000}
	}
	type pair struct {
		orig      *trainer.Sample
		reordered trainer.Sample
		reorderN  float64 // reordering cost in CSR-SpMV units
		diaGain   bool
	}
	var pairs []pair
	addPair := func(name string, m *sparse.CSR, s *trainer.Sample) {
		rows, cols := m.Dims()
		if rows != cols {
			return
		}
		perm, err := reorder.RCM(m)
		if err != nil {
			return
		}
		rm, err := reorder.Apply(m, perm)
		if err != nil {
			return
		}
		rs, err := trainer.CollectOne(name+"-rcm", rm, c.Oracle)
		if err != nil {
			return
		}
		csrT, ok := c.Oracle.SpMVTime(m, sparse.FmtCSR)
		if !ok || csrT <= 0 {
			return
		}
		// Reorder cost in CSR-SpMV units, using the oracle's element-op
		// scale implied by the matrix's own SpMV time.
		spmvOpsApprox := 2.0 * float64(m.NNZ())
		reorderN := reorderOpsPerNNZ * float64(m.NNZ()) / spmvOpsApprox
		_, origDIA := s.SpMVNorm[sparse.FmtDIA]
		_, rcmDIA := rs.SpMVNorm[sparse.FmtDIA]
		pairs = append(pairs, pair{
			orig:      s,
			reordered: rs,
			reorderN:  reorderN,
			diaGain:   !origDIA && rcmDIA,
		})
	}
	for i := range c.EvalSamples {
		addPair(c.EvalSamples[i].Name, c.EvalEntries[i].Matrix, &c.EvalSamples[i])
	}
	// The evaluation corpus has no hidden-band matrices (its banded family
	// is already well ordered, its scatter families genuinely have no band
	// to find). Add the case RCM exists for: banded structure destroyed by
	// a bad node numbering, the FEM-mesh-with-random-labels situation.
	hidden, err := hiddenBandCorpus(c.Opt.Seed+7, 12, c.Opt.MinSize, c.Opt.MaxSize)
	if err != nil {
		return nil, err
	}
	for i := range hidden {
		s, err := trainer.CollectOne(fmt.Sprintf("hiddenband-%02d", i), hidden[i], c.Oracle)
		if err != nil {
			continue
		}
		addPair(s.Name, hidden[i], &s)
	}
	if len(pairs) == 0 {
		return nil, fmt.Errorf("experiments: no reorderable matrices in corpus")
	}

	out := &AblationReorder{}
	for _, it := range iters {
		row := AblationReorderRow{Iters: it}
		var plain, ext []float64
		for _, p := range pairs {
			if p.diaGain {
				row.DIAUnlocked++
			}
			fPlain := oracleDecidePool(p.orig, it, sparse.AllFormats)
			costPlain := realizedCost(p.orig, fPlain, it)

			// Reorder branch: the reordered matrix's SpMV times are
			// normalized by ITS OWN CSR time; rescale to the original
			// matrix's units through the two absolute CSR times.
			scale := p.reordered.CSRTime / p.orig.CSRTime
			fRe := oracleDecidePool(&p.reordered, it, sparse.AllFormats)
			costRe := p.reorderN + realizedCost(&p.reordered, fRe, it)*scale

			costExt := costPlain
			if costRe < costExt {
				costExt = costRe
				row.ReorderWins++
			}
			plain = append(plain, it/costPlain)
			ext = append(ext, it/costExt)
		}
		row.DIAUnlocked /= len(iters) // counted once per pair, not per iter
		row.FormatsOnly = geomean(plain)
		row.WithReorder = geomean(ext)
		out.Rows = append(out.Rows, row)
	}
	// DIAUnlocked is per-corpus, not per-iteration: recompute cleanly.
	unlocked := 0
	for _, p := range pairs {
		if p.diaGain {
			unlocked++
		}
	}
	for i := range out.Rows {
		out.Rows[i].DIAUnlocked = unlocked
	}
	return out, nil
}

// Render prints the comparison.
func (a *AblationReorder) Render() string {
	var rows [][]string
	for _, r := range a.Rows {
		rows = append(rows, []string{
			fmt.Sprintf("%g", r.Iters),
			fmt.Sprintf("%.3f", r.FormatsOnly),
			fmt.Sprintf("%.3f", r.WithReorder),
			fmt.Sprintf("%d", r.ReorderWins),
			fmt.Sprintf("%d", r.DIAUnlocked),
		})
	}
	return "Ablation A5: adding RCM reordering to the decision space (oracle selection)\n" +
		table([]string{"Iters", "Formats only", "With reorder", "Reorder wins", "DIA unlocked"}, rows)
}
