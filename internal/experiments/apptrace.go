package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/apps"
	"repro/internal/matgen"
	"repro/internal/sparse"
	"repro/internal/trainer"
)

// AppKind identifies one of the paper's four applications.
type AppKind int

// The four applications of §V-D.
const (
	AppPageRank AppKind = iota
	AppBiCGSTAB
	AppCG
	AppGMRES
	numApps
)

// AllApps lists the applications in the paper's Table VI order.
var AllApps = []AppKind{AppPageRank, AppBiCGSTAB, AppCG, AppGMRES}

var appNames = [...]string{
	AppPageRank: "PageRank",
	AppBiCGSTAB: "BiCGSTAB",
	AppCG:       "CG",
	AppGMRES:    "GMRES",
}

// String returns the app's display name.
func (a AppKind) String() string {
	if a < 0 || int(a) >= len(appNames) {
		return fmt.Sprintf("App(%d)", int(a))
	}
	return appNames[a]
}

// SpMVPerIter is the number of SpMV calls per loop iteration.
func (a AppKind) SpMVPerIter() float64 {
	if a == AppBiCGSTAB {
		return 2
	}
	return 1
}

// Trace is one application run on one matrix: the true iteration count and
// progress-indicator series from an actual solver execution, plus the
// oracle costs of the operand matrix (the matrix SpMV actually runs on —
// for PageRank that is the transition matrix, not the adjacency input).
type Trace struct {
	App        AppKind
	Name       string
	Operand    *sparse.CSR
	Sample     trainer.Sample
	Iterations int
	Progress   []float64
	Tol        float64 // absolute tolerance on the progress indicator
	Converged  bool
}

// appTolerance is the relative solver tolerance used across the app
// experiments. It is tighter than typical defaults so the solver loops run
// long enough to exercise the conversion trade-off, mirroring the paper's
// loop-tripcount ranges (BiCGSTAB up to 10000).
const appTolerance = 1e-10

// BuildTraces runs the application once per corpus entry (on the default
// CSR format, which does not affect iteration counts) and records
// everything the cost simulations need. Entries the app cannot use (solver
// breakdowns, non-convergence) are skipped, mirroring the paper's
// "only valid runs are considered".
func (c *Context) BuildTraces(app AppKind, entries []matgen.Entry) ([]Trace, error) {
	var traces []Trace
	for _, e := range entries {
		tr, err := c.buildTrace(app, e)
		if err != nil {
			continue
		}
		traces = append(traces, tr)
	}
	if len(traces) == 0 {
		return nil, fmt.Errorf("experiments: no valid %v runs in corpus of %d entries", app, len(entries))
	}
	return traces, nil
}

func (c *Context) buildTrace(app AppKind, e matgen.Entry) (Trace, error) {
	n, _ := e.Matrix.Dims()
	rng := rand.New(rand.NewSource(e.Spec.Seed ^ 0x5EED))
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	opt := apps.DefaultSolveOptions()
	opt.Tol = appTolerance

	var (
		operand *sparse.CSR
		res     apps.Result
		tol     float64
		err     error
	)
	switch app {
	case AppPageRank:
		p, dangling, errT := apps.BuildTransition(e.Matrix)
		if errT != nil {
			return Trace{}, errT
		}
		operand = p
		prOpt := apps.DefaultPageRankOptions()
		res, err = apps.PageRank(apps.Ser(p), dangling, prOpt, nil)
		tol = prOpt.Tol
	case AppCG:
		operand = e.Matrix
		res, err = apps.CG(apps.Ser(operand), b, opt, nil)
		tol = opt.Tol * nrm2(b)
	case AppBiCGSTAB:
		operand = e.Matrix
		res, err = apps.BiCGSTAB(apps.Ser(operand), b, opt, nil)
		tol = opt.Tol * nrm2(b)
	case AppGMRES:
		operand = e.Matrix
		res, err = apps.GMRES(apps.Ser(operand), b, opt, nil)
		tol = opt.Tol * nrm2(b)
	default:
		return Trace{}, fmt.Errorf("experiments: unknown app %v", app)
	}
	if err != nil {
		return Trace{}, err
	}
	if !res.Converged || res.Iterations == 0 {
		return Trace{}, fmt.Errorf("experiments: %v did not converge", app)
	}
	sample, err := trainer.CollectOne(e.Spec.Name, operand, c.Oracle)
	if err != nil {
		return Trace{}, err
	}
	return Trace{
		App:        app,
		Name:       e.Spec.Name,
		Operand:    operand,
		Sample:     sample,
		Iterations: res.Iterations,
		Progress:   res.Progress,
		Tol:        tol,
		Converged:  res.Converged,
	}, nil
}

func nrm2(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}
