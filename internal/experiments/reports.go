package experiments

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/sparse"
	"repro/internal/trainer"
)

// ---------------------------------------------------------------------------
// E4 — Table V: cross-validated prediction errors of the primary predictors.

// Table5 wraps the trainer's per-format evaluation rows.
type Table5 struct {
	Rows []trainer.EvalRow
}

// RunTable5 runs 5-fold cross validation over the combined corpus (the
// paper evaluates its predictors over all valid matrices with 5-fold CV).
func (c *Context) RunTable5() (*Table5, error) {
	all := append(append([]trainer.Sample(nil), c.TrainSamples...), c.EvalSamples...)
	rows, err := trainer.Evaluate(all, 5, c.Opt.Params, c.Opt.Seed)
	if err != nil {
		return nil, err
	}
	return &Table5{Rows: rows}, nil
}

// Render prints the table.
func (t *Table5) Render() string {
	var rows [][]string
	for _, r := range t.Rows {
		rows = append(rows, []string{
			formatName(r.Format),
			fmt.Sprintf("%d", r.NumValid),
			fmt.Sprintf("%.1f%%", 100*r.ConvError),
			fmt.Sprintf("%.1f%%", 100*r.SpMVError),
		})
	}
	return "Table V: 5-fold CV relative errors of normalized conversion time and SpMV time\n" +
		table([]string{"Format", "#matrices", "Error(conv time)", "Error(SpMV time)"}, rows)
}

// ---------------------------------------------------------------------------
// E6 — Stage-1 tripcount prediction quality (§V-D text).

// Stage1Row reports the stage-1 predictor's quality on one application.
type Stage1Row struct {
	App AppKind
	// Runs is the number of runs where stage 1 fired (loop reached K).
	Runs int
	// ShortRuns is the number of runs the lazy scheme skipped entirely.
	ShortRuns int
	// MeanRelError is the mean |predicted - actual| / actual tripcount
	// error (the paper reports 17%-102% across the apps).
	MeanRelError float64
	// GateAccuracy is the fraction of runs where the predictor made the
	// right go/no-go call on "remaining >= TH" (the paper reports 65%-93%).
	GateAccuracy float64
}

// Stage1Report is the per-application stage-1 evaluation.
type Stage1Report struct {
	Rows []Stage1Row
}

// RunStage1 evaluates the lazy tripcount predictor inside all four apps.
func (c *Context) RunStage1() (*Stage1Report, error) {
	out := &Stage1Report{}
	for _, app := range AllApps {
		sim, err := c.RunApp(app)
		if err != nil {
			return nil, err
		}
		row := Stage1Row{App: app}
		correct := 0
		for _, o := range sim.Outcomes {
			if !o.Stage1Ran {
				row.ShortRuns++
				continue
			}
			row.Runs++
			actual := o.Trace.Iterations
			relErr := math.Abs(float64(o.PredictedTotal-actual)) / float64(actual)
			row.MeanRelError += relErr
			gateTrue := actual-c.Opt.Cfg.K >= c.Opt.Cfg.TH
			gatePred := o.PredictedTotal-c.Opt.Cfg.K >= c.Opt.Cfg.TH
			if gateTrue == gatePred {
				correct++
			}
		}
		if row.Runs > 0 {
			row.MeanRelError /= float64(row.Runs)
			row.GateAccuracy = float64(correct) / float64(row.Runs)
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// Render prints the report.
func (r *Stage1Report) Render() string {
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.App.String(),
			fmt.Sprintf("%d", row.Runs),
			fmt.Sprintf("%d", row.ShortRuns),
			fmt.Sprintf("%.0f%%", 100*row.MeanRelError),
			fmt.Sprintf("%.0f%%", 100*row.GateAccuracy),
		})
	}
	return "Stage-1 lazy tripcount predictor (paper §V-D)\n" +
		table([]string{"Application", "Gated runs", "Short runs", "Tripcount error", "Gate accuracy"}, rows)
}

// ---------------------------------------------------------------------------
// E10 — Table VIII: per-matrix case studies.

// Table8Row is one case-study matrix.
type Table8Row struct {
	App       AppKind
	Name      string
	NNZ       int
	Rows      int
	Iters     int
	FormatOO  sparse.Format
	FormatOC  sparse.Format
	SpeedupOO float64
	SpeedupOC float64
}

// Table8 reproduces the paper's per-matrix comparison (its Table VIII).
type Table8 struct {
	Rows []Table8Row
}

// RunTable8 picks a spread of case studies — the largest and smallest
// matrices plus quartile picks from the PageRank and CG simulations — and
// reports both schemes' choices and speedups.
func (c *Context) RunTable8() (*Table8, error) {
	var all []SimOutcome
	for _, app := range []AppKind{AppPageRank, AppCG, AppBiCGSTAB} {
		sim, err := c.RunApp(app)
		if err != nil {
			return nil, err
		}
		all = append(all, sim.Outcomes...)
	}
	sort.Slice(all, func(i, j int) bool {
		return all[i].Trace.Operand.NNZ() > all[j].Trace.Operand.NNZ()
	})
	picks := quartilePicks(len(all), 6)
	out := &Table8{}
	for _, idx := range picks {
		o := all[idx]
		rows, _ := o.Trace.Operand.Dims()
		out.Rows = append(out.Rows, Table8Row{
			App:       o.Trace.App,
			Name:      o.Trace.Name,
			NNZ:       o.Trace.Operand.NNZ(),
			Rows:      rows,
			Iters:     o.Trace.Iterations,
			FormatOO:  o.OOFormat,
			FormatOC:  o.OCFormat,
			SpeedupOO: o.Baseline / o.OOCost,
			SpeedupOC: o.Baseline / o.OCCost,
		})
	}
	return out, nil
}

// quartilePicks selects up to k spread-out indices in [0, n).
func quartilePicks(n, k int) []int {
	if n == 0 {
		return nil
	}
	if k > n {
		k = n
	}
	out := make([]int, 0, k)
	for i := 0; i < k; i++ {
		out = append(out, i*(n-1)/max(1, k-1))
	}
	// Deduplicate while preserving order.
	seen := map[int]bool{}
	uniq := out[:0]
	for _, v := range out {
		if !seen[v] {
			seen[v] = true
			uniq = append(uniq, v)
		}
	}
	return uniq
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Render prints the table.
func (t *Table8) Render() string {
	var rows [][]string
	for _, r := range t.Rows {
		rows = append(rows, []string{
			r.App.String(),
			r.Name,
			fmt.Sprintf("%d", r.NNZ),
			fmt.Sprintf("%d", r.Rows),
			fmt.Sprintf("%d", r.Iters),
			formatName(r.FormatOO),
			formatName(r.FormatOC),
			fmt.Sprintf("%.3f", r.SpeedupOO),
			fmt.Sprintf("%.3f", r.SpeedupOC),
		})
	}
	return "Table VIII: case studies (Format/Speedup under oracle-OO vs the OC selector)\n" +
		table([]string{"App", "Matrix", "NNZ", "Rows", "Iters", "Fmt_OO", "Fmt_OC", "Speedup_OO", "Speedup_OC"}, rows)
}

// ---------------------------------------------------------------------------
// E11 — prediction overhead (§V-D closing text).

// OverheadReport summarizes the runtime overhead components: feature
// extraction relative to one SpMV call (the paper reports 2x-4x) and the
// constant model-inference times.
type OverheadReport struct {
	FeatureMin, FeatureMedian, FeatureMax float64 // in CSR SpMV calls
	Stage1Seconds, Stage2ModelSeconds     float64
}

// RunOverhead summarizes prediction overheads over the evaluation corpus.
func (c *Context) RunOverhead() *OverheadReport {
	ratios := make([]float64, 0, len(c.EvalSamples))
	for _, s := range c.EvalSamples {
		ratios = append(ratios, s.FeatureNorm)
	}
	sort.Float64s(ratios)
	r := &OverheadReport{
		Stage1Seconds:      c.Opt.Stage1Seconds,
		Stage2ModelSeconds: c.Opt.Stage2ModelSeconds,
	}
	if len(ratios) > 0 {
		r.FeatureMin = ratios[0]
		r.FeatureMedian = ratios[len(ratios)/2]
		r.FeatureMax = ratios[len(ratios)-1]
	}
	return r
}

// Render prints the report.
func (r *OverheadReport) Render() string {
	return fmt.Sprintf(`Prediction overhead (paper §V-D)
feature extraction: min %.1fx, median %.1fx, max %.1fx of one CSR SpMV call
stage-1 model inference: %.3f ms (constant)
stage-2 model inference: %.3f ms (constant)
`, r.FeatureMin, r.FeatureMedian, r.FeatureMax,
		r.Stage1Seconds*1e3, r.Stage2ModelSeconds*1e3)
}
