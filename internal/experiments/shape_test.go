package experiments

import (
	"math"
	"strings"
	"testing"
)

// The CheckShape helpers gate the reproduction's headline claims; verify
// they actually reject violations, not just accept the happy path.

func TestFig5CheckShapeRejectsViolations(t *testing.T) {
	good := Fig5Point{Iters: 10, SpeedupOC: 1.0, UBOC: 1.0, UBOO: 0.5}
	cases := map[string]*Fig5{
		"empty": {},
		"oo not slowing down at short loops": {Points: []Fig5Point{
			{Iters: 10, SpeedupOC: 1.0, UBOC: 1.1, UBOO: 1.2},
		}},
		"uboc below 1": {Points: []Fig5Point{
			good, {Iters: 100, SpeedupOC: 1.0, UBOC: 0.8, UBOO: 0.5},
		}},
		"oc slowdown": {Points: []Fig5Point{
			good, {Iters: 100, SpeedupOC: 0.5, UBOC: 1.2, UBOO: 0.9},
		}},
		"uboc below uboo": {Points: []Fig5Point{
			good, {Iters: 100, SpeedupOC: 1.2, UBOC: 1.2, UBOO: 1.6},
		}},
	}
	for name, f := range cases {
		if err := f.CheckShape(); err == nil {
			t.Errorf("%s: CheckShape accepted a violation", name)
		}
	}
	ok := &Fig5{Points: []Fig5Point{
		good,
		{Iters: 100, SpeedupOC: 1.3, UBOC: 1.5, UBOO: 1.2},
	}}
	if err := ok.CheckShape(); err != nil {
		t.Errorf("valid shape rejected: %v", err)
	}
}

func TestTable6CheckShapeRejectsViolations(t *testing.T) {
	mk := func(oc, uboo, uboc float64) *Table6 {
		return &Table6{Rows: []Table6Row{{App: AppCG, SpeedupOC: oc, UBOO: uboo, UBOC: uboc}}}
	}
	if err := mk(0.8, 0.7, 1.5).CheckShape(); err == nil {
		t.Error("aggregate slowdown accepted")
	}
	if err := mk(1.1, 1.3, 1.5).CheckShape(); err == nil {
		t.Error("OC below UB_OO accepted")
	}
	if err := mk(1.6, 1.0, 1.5).CheckShape(); err == nil {
		t.Error("OC above its own upper bound accepted")
	}
	if err := mk(1.2, 1.0, 1.5).CheckShape(); err != nil {
		t.Errorf("valid row rejected: %v", err)
	}
}

func TestHistogramBucketsAndRender(t *testing.T) {
	h := buildHistogram("title", []float64{0.1, 0.96, 1.0, 1.3, 3.5})
	total := 0
	for _, n := range h.Counts {
		total += n
	}
	if total != 5 {
		t.Fatalf("histogram holds %d of 5 values", total)
	}
	if h.Minimum != 0.1 || h.Maximum != 3.5 {
		t.Errorf("min/max %g/%g", h.Minimum, h.Maximum)
	}
	if got := h.SlowdownFraction(0.95); math.Abs(got-0.2) > 1e-9 {
		t.Errorf("SlowdownFraction(0.95) = %g, want 0.2", got)
	}
	if !strings.Contains(h.Render(), "title") {
		t.Error("render missing title")
	}
	// Value beyond the last finite edge lands in the +inf bucket.
	if h.Counts[len(h.Counts)-1] != 1 {
		t.Errorf("inf bucket holds %d, want 1", h.Counts[len(h.Counts)-1])
	}
}

func TestQuartilePicks(t *testing.T) {
	if got := quartilePicks(0, 5); got != nil {
		t.Errorf("n=0: %v", got)
	}
	got := quartilePicks(10, 4)
	if len(got) != 4 || got[0] != 0 || got[len(got)-1] != 9 {
		t.Errorf("picks = %v", got)
	}
	// k > n deduplicates without panicking.
	got = quartilePicks(2, 6)
	if len(got) > 2 {
		t.Errorf("picks = %v for n=2", got)
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Errorf("picks not strictly increasing: %v", got)
		}
	}
}

func TestGeomean(t *testing.T) {
	if got := geomean(nil); got != 0 {
		t.Errorf("geomean(nil) = %g", got)
	}
	if got := geomean([]float64{2, 8}); math.Abs(got-4) > 1e-12 {
		t.Errorf("geomean(2,8) = %g, want 4", got)
	}
	if got := geomean([]float64{1, -1}); !math.IsNaN(got) {
		t.Errorf("geomean with negative = %g, want NaN", got)
	}
}
