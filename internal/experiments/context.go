// Package experiments regenerates every table and figure of the paper's
// evaluation section (see DESIGN.md §4 for the experiment index). Each
// experiment is a pure function of a Context — a corpus, a cost oracle, and
// a predictor bundle trained on a *separate* training corpus so the
// reported numbers are out-of-sample — and returns a typed result with a
// Render method that prints the same rows the paper reports.
package experiments

import (
	"fmt"
	"math"
	"strings"
	"text/tabwriter"

	"repro/internal/core"
	"repro/internal/features"
	"repro/internal/gbt"
	"repro/internal/matgen"
	"repro/internal/sparse"
	"repro/internal/timing"
	"repro/internal/trainer"
)

// Options configures a Context build.
type Options struct {
	// TrainCount / EvalCount are the corpus sizes. The training corpus
	// fits the predictors; every experiment reports on the disjoint
	// evaluation corpus.
	TrainCount, EvalCount int
	// MinSize / MaxSize bound matrix scale.
	MinSize, MaxSize int
	// Seed drives corpus generation (train and eval derive distinct
	// sub-seeds).
	Seed int64
	// Params are the GBT hyperparameters.
	Params gbt.Params
	// Cfg is the selector configuration (K, TH, limits).
	Cfg core.Config
	// Stage1Seconds / Stage2ModelSeconds model the constant inference cost
	// of the two stages in the cost simulations (the paper reports ~2ms
	// and ~5ms for its ARIMA and XGBoost models; our Go models are
	// cheaper). Feature-extraction cost comes from the oracle.
	Stage1Seconds, Stage2ModelSeconds float64
}

// DefaultOptions is the configuration used by the committed EXPERIMENTS.md.
func DefaultOptions() Options {
	p := gbt.DefaultParams()
	p.NumRounds = 60
	return Options{
		TrainCount:         96,
		EvalCount:          48,
		MinSize:            500,
		MaxSize:            6000,
		Seed:               42,
		Params:             p,
		Cfg:                core.DefaultConfig(),
		Stage1Seconds:      20e-6,
		Stage2ModelSeconds: 50e-6,
	}
}

// Context carries everything the experiments need.
type Context struct {
	Opt    Options
	Oracle timing.Oracle

	TrainEntries []matgen.Entry
	EvalEntries  []matgen.Entry
	TrainSamples []trainer.Sample
	EvalSamples  []trainer.Sample

	Preds *core.Predictors

	// simCache memoizes app simulations; several experiments share them.
	simCache map[AppKind]*AppSim
}

// NewContext generates the corpora, collects costs through the oracle, and
// trains the predictor bundle on the training half.
func NewContext(opt Options, oracle timing.Oracle) (*Context, error) {
	if opt.TrainCount <= 0 || opt.EvalCount <= 0 {
		return nil, fmt.Errorf("experiments: corpus counts %d/%d", opt.TrainCount, opt.EvalCount)
	}
	trainEntries, err := matgen.Corpus(matgen.CorpusConfig{
		Count: opt.TrainCount, Seed: opt.Seed, MinSize: opt.MinSize, MaxSize: opt.MaxSize,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: training corpus: %w", err)
	}
	evalEntries, err := matgen.Corpus(matgen.CorpusConfig{
		Count: opt.EvalCount, Seed: opt.Seed + 1, MinSize: opt.MinSize, MaxSize: opt.MaxSize,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: evaluation corpus: %w", err)
	}
	trainSamples, err := trainer.Collect(trainEntries, oracle)
	if err != nil {
		return nil, fmt.Errorf("experiments: collecting training samples: %w", err)
	}
	evalSamples, err := trainer.Collect(evalEntries, oracle)
	if err != nil {
		return nil, fmt.Errorf("experiments: collecting evaluation samples: %w", err)
	}
	preds, err := trainer.Train(trainSamples, opt.Params, 5)
	if err != nil {
		return nil, fmt.Errorf("experiments: training predictors: %w", err)
	}
	return &Context{
		Opt:          opt,
		Oracle:       oracle,
		TrainEntries: trainEntries,
		EvalEntries:  evalEntries,
		TrainSamples: trainSamples,
		EvalSamples:  evalSamples,
		Preds:        preds,
	}, nil
}

// geomean returns the geometric mean of strictly positive values (the
// standard aggregate for speedups); zero for an empty slice.
func geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		if x <= 0 {
			return math.NaN()
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// table renders rows with aligned columns.
func table(header []string, rows [][]string) string {
	var b strings.Builder
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, strings.Join(header, "\t"))
	sep := make([]string, len(header))
	for i, h := range header {
		sep[i] = strings.Repeat("-", len(h))
	}
	fmt.Fprintln(w, strings.Join(sep, "\t"))
	for _, r := range rows {
		fmt.Fprintln(w, strings.Join(r, "\t"))
	}
	w.Flush()
	return b.String()
}

// sampleByName indexes eval samples by matrix name.
func (c *Context) sampleByName() map[string]*trainer.Sample {
	m := make(map[string]*trainer.Sample, len(c.EvalSamples))
	for i := range c.EvalSamples {
		m[c.EvalSamples[i].Name] = &c.EvalSamples[i]
	}
	return m
}

// decideOC runs the trained stage-2 decision for an eval sample.
func (c *Context) decideOC(entry matgen.Entry, s *trainer.Sample, remaining float64) core.Decision {
	fs := features.FromVector(s.Features)
	blocks := features.CountBlocks(entry.Matrix, c.Opt.Cfg.Lim.BSRBlockSize)
	return c.Preds.Decide(fs, blocks, remaining, c.Opt.Cfg.Lim, c.Opt.Cfg.Margin)
}

// featureSet rebuilds the feature Set of a sample.
func featureSet(s *trainer.Sample) *features.Set {
	return features.FromVector(s.Features)
}

// blocksOf counts a matrix's BSR blocks at the conversion block size.
func blocksOf(m *sparse.CSR, bs int) int {
	return features.CountBlocks(m, bs)
}

// formatName renders a format for tables.
func formatName(f sparse.Format) string { return f.String() }
