package experiments

import (
	"fmt"
	"math"
	"strings"
)

// CSV renderers for the plottable artifacts, so the figures can be
// regenerated in any plotting tool from `ocsel exp <id> -csv` output.

// CSV returns Figure 5 as comma-separated series.
func (f *Fig5) CSV() string {
	var b strings.Builder
	b.WriteString("iters,speedup_oc,ub_oc,ub_oo\n")
	for _, p := range f.Points {
		fmt.Fprintf(&b, "%g,%.6f,%.6f,%.6f\n", p.Iters, p.SpeedupOC, p.UBOC, p.UBOO)
	}
	return b.String()
}

// CSV returns the histogram buckets as comma-separated rows.
func (h *Histogram) CSV() string {
	var b strings.Builder
	b.WriteString("bucket_lo,bucket_hi,count\n")
	for i, n := range h.Counts {
		hi := fmt.Sprintf("%g", h.Edges[i+1])
		if math.IsInf(h.Edges[i+1], 1) {
			hi = "inf"
		}
		fmt.Fprintf(&b, "%g,%s,%d\n", h.Edges[i], hi, n)
	}
	return b.String()
}

// CSV returns Table VI as comma-separated rows.
func (t *Table6) CSV() string {
	var b strings.Builder
	b.WriteString("application,runs,iter_min,iter_max,ub_oo,ub_oc,speedup_oc\n")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%s,%d,%d,%d,%.6f,%.6f,%.6f\n",
			r.App, r.Runs, r.IterMin, r.IterMax, r.UBOO, r.UBOC, r.SpeedupOC)
	}
	return b.String()
}

// CSV returns Table III as comma-separated rows.
func (t *Table3) CSV() string {
	var b strings.Builder
	b.WriteString("format,valid,min,median,max,mean\n")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%s,%d,%.4f,%.4f,%.4f,%.4f\n",
			r.Format, r.NumValid, r.Min, r.Median, r.Max, r.MeanNormalization)
	}
	return b.String()
}

// CSV returns Table V as comma-separated rows.
func (t *Table5) CSV() string {
	var b strings.Builder
	b.WriteString("format,matrices,conv_error,spmv_error\n")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%s,%d,%.6f,%.6f\n", r.Format, r.NumValid, r.ConvError, r.SpMVError)
	}
	return b.String()
}
