package experiments

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/features"
	"repro/internal/matgen"
	"repro/internal/sparse"
)

// SimOutcome is the simulated end-to-end cost of one application run under
// the three schemes the paper compares. All costs are in units of one CSR
// SpMV call on the operand matrix, so Baseline/Cost is the speedup.
type SimOutcome struct {
	Trace *Trace
	// Baseline is the default-CSR cost: iterations x SpMV-per-iter.
	Baseline float64
	// OOFormat/OOCost: the overhead-oblivious upper bound — convert to the
	// true fastest-SpMV format no matter what, conversion paid at runtime.
	OOFormat sparse.Format
	OOCost   float64
	// UBOCFormat/UBOCCost: the overhead-conscious upper bound — oracle
	// cost-benefit with perfect knowledge, no prediction overhead.
	UBOCFormat sparse.Format
	UBOCCost   float64
	// OCFormat/OCCost: the paper's actual two-stage scheme with trained
	// predictors, all overheads charged.
	OCFormat sparse.Format
	OCCost   float64
	// Stage bookkeeping for the stage-1 accuracy report.
	Stage1Ran      bool
	Stage2Ran      bool
	Converted      bool
	PredictedTotal int
}

// Simulate prices one trace under the three schemes.
func (c *Context) Simulate(tr *Trace) SimOutcome {
	s := &tr.Sample
	w := tr.App.SpMVPerIter()
	n := float64(tr.Iterations)
	out := SimOutcome{Trace: tr, Baseline: n * w}

	// Overhead-oblivious upper bound.
	out.OOFormat = core.OverheadObliviousDecide(s.SpMVNorm)
	out.OOCost = s.ConvNorm[out.OOFormat] + n*w*s.SpMVNorm[out.OOFormat]

	// Overhead-conscious upper bound.
	out.UBOCFormat = core.OracleDecide(s.ConvNorm, s.SpMVNorm, n*w)
	out.UBOCCost = s.ConvNorm[out.UBOCFormat] + n*w*s.SpMVNorm[out.UBOCFormat]

	// The real two-stage scheme.
	out.OCFormat = sparse.FmtCSR
	out.OCCost = out.Baseline
	k := c.Opt.Cfg.K
	if tr.Iterations < k {
		return out // lazy: the pipeline never woke up
	}
	stage1n := c.Opt.Stage1Seconds / s.CSRTime
	out.Stage1Ran = true
	predTotal, err := c.Opt.Cfg.Tripcount.PredictTotal(tr.Progress[:k], tr.Tol)
	if err != nil {
		out.OCCost += stage1n
		return out
	}
	out.PredictedTotal = predTotal
	remaining := predTotal - k
	if remaining < c.Opt.Cfg.TH {
		out.OCCost += stage1n
		return out
	}
	// Overhead-conscious gate on stage 2 itself (mirrors core.Adaptive):
	// the known feature cost must be amortizable by the remaining work.
	if f := c.Opt.Cfg.GateOverheadFactor; f > 0 && float64(remaining)*w < f*s.FeatureNorm {
		out.OCCost += stage1n
		return out
	}
	out.Stage2Ran = true
	fs := features.FromVector(s.Features)
	blocks := features.CountBlocks(tr.Operand, c.Opt.Cfg.Lim.BSRBlockSize)
	d := c.Preds.Decide(fs, blocks, float64(remaining)*w, c.Opt.Cfg.Lim, c.Opt.Cfg.Margin)
	predn := s.FeatureNorm + c.Opt.Stage2ModelSeconds/s.CSRTime
	conv, okc := s.ConvNorm[d.Format]
	spmv, oks := s.SpMVNorm[d.Format]
	if d.Format == sparse.FmtCSR || !okc || !oks {
		out.OCCost = n*w + stage1n + predn
		return out
	}
	out.Converted = true
	out.OCFormat = d.Format
	out.OCCost = float64(k)*w + stage1n + predn + conv + (n-float64(k))*w*spmv
	return out
}

// AppSim is the full simulation of one application over a corpus.
type AppSim struct {
	App      AppKind
	Outcomes []SimOutcome
}

// RunApp builds traces for the app (PageRank uses the general evaluation
// corpus, the solvers use a dedicated SPD corpus) and simulates each. The
// result is cached: several experiments consume the same simulation.
func (c *Context) RunApp(app AppKind) (*AppSim, error) {
	if sim, ok := c.simCache[app]; ok {
		return sim, nil
	}
	sim, err := c.runAppUncached(app)
	if err != nil {
		return nil, err
	}
	if c.simCache == nil {
		c.simCache = make(map[AppKind]*AppSim)
	}
	c.simCache[app] = sim
	return sim, nil
}

func (c *Context) runAppUncached(app AppKind) (*AppSim, error) {
	entries := c.EvalEntries
	if app != AppPageRank {
		var err error
		entries, err = matgen.SolverCorpus(c.Opt.EvalCount/2, c.Opt.Seed+2, c.Opt.MinSize, c.Opt.MaxSize)
		if err != nil {
			return nil, err
		}
	}
	traces, err := c.BuildTraces(app, entries)
	if err != nil {
		return nil, err
	}
	sim := &AppSim{App: app}
	for i := range traces {
		sim.Outcomes = append(sim.Outcomes, c.Simulate(&traces[i]))
	}
	return sim, nil
}

// speedups extracts the per-run speedups of one scheme.
func (a *AppSim) speedups(cost func(SimOutcome) float64) []float64 {
	out := make([]float64, 0, len(a.Outcomes))
	for _, o := range a.Outcomes {
		out = append(out, o.Baseline/cost(o))
	}
	return out
}

// ---------------------------------------------------------------------------
// E7 — Table VI: whole-application speedups.

// Table6Row is one application's aggregate speedups.
type Table6Row struct {
	App       AppKind
	Runs      int
	UBOO      float64
	UBOC      float64
	SpeedupOC float64
	// IterMin/IterMax document the loop-tripcount range (the paper reports
	// e.g. PageRank [1, 93]).
	IterMin, IterMax int
}

// Table6 is the paper's headline result table.
type Table6 struct {
	Rows []Table6Row
}

// RunTable6 simulates all four applications.
func (c *Context) RunTable6() (*Table6, error) {
	out := &Table6{}
	for _, app := range AllApps {
		sim, err := c.RunApp(app)
		if err != nil {
			return nil, fmt.Errorf("experiments: %v: %w", app, err)
		}
		row := Table6Row{App: app, Runs: len(sim.Outcomes), IterMin: math.MaxInt64}
		row.UBOO = geomean(sim.speedups(func(o SimOutcome) float64 { return o.OOCost }))
		row.UBOC = geomean(sim.speedups(func(o SimOutcome) float64 { return o.UBOCCost }))
		row.SpeedupOC = geomean(sim.speedups(func(o SimOutcome) float64 { return o.OCCost }))
		for _, o := range sim.Outcomes {
			if o.Trace.Iterations < row.IterMin {
				row.IterMin = o.Trace.Iterations
			}
			if o.Trace.Iterations > row.IterMax {
				row.IterMax = o.Trace.Iterations
			}
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// Render prints the table.
func (t *Table6) Render() string {
	var rows [][]string
	for _, r := range t.Rows {
		rows = append(rows, []string{
			r.App.String(),
			fmt.Sprintf("%d", r.Runs),
			fmt.Sprintf("[%d, %d]", r.IterMin, r.IterMax),
			fmt.Sprintf("%.4f", r.UBOO),
			fmt.Sprintf("%.4f", r.UBOC),
			fmt.Sprintf("%.4f", r.SpeedupOC),
		})
	}
	return "Table VI: whole-application speedups over the CSR default (geometric mean)\n" +
		table([]string{"Application", "Runs", "IterRange", "UB_OO", "UB_OC", "SpeedupOC"}, rows)
}

// CheckShape verifies the paper's qualitative claims for Table VI: the
// overhead-conscious scheme beats the overhead-oblivious upper bound for
// every application, never slows the application down on aggregate, and
// stays close to its own upper bound.
func (t *Table6) CheckShape() error {
	for _, r := range t.Rows {
		if r.SpeedupOC < 0.98 {
			return fmt.Errorf("table6: %v SpeedupOC = %.3f (aggregate slowdown)", r.App, r.SpeedupOC)
		}
		if r.SpeedupOC < r.UBOO-0.02 {
			return fmt.Errorf("table6: %v SpeedupOC %.3f below UB_OO %.3f", r.App, r.SpeedupOC, r.UBOO)
		}
		if r.SpeedupOC > r.UBOC+1e-6 {
			return fmt.Errorf("table6: %v SpeedupOC %.3f exceeds its upper bound %.3f", r.App, r.SpeedupOC, r.UBOC)
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// E8 — Table VII: distribution of selected formats per application.

// Table7 counts the formats chosen by the overhead-oblivious baseline and
// by the overhead-conscious scheme for every application.
type Table7 struct {
	Apps []AppKind
	OO   map[AppKind]map[sparse.Format]int
	OC   map[AppKind]map[sparse.Format]int
}

// RunTable7 simulates all apps and tallies chosen formats.
func (c *Context) RunTable7() (*Table7, error) {
	out := &Table7{
		Apps: AllApps,
		OO:   make(map[AppKind]map[sparse.Format]int),
		OC:   make(map[AppKind]map[sparse.Format]int),
	}
	for _, app := range AllApps {
		sim, err := c.RunApp(app)
		if err != nil {
			return nil, err
		}
		out.OO[app] = make(map[sparse.Format]int)
		out.OC[app] = make(map[sparse.Format]int)
		for _, o := range sim.Outcomes {
			out.OO[app][o.OOFormat]++
			out.OC[app][o.OCFormat]++
		}
	}
	return out, nil
}

// Render prints the table.
func (t *Table7) Render() string {
	header := []string{"Format"}
	for _, app := range t.Apps {
		header = append(header, app.String()+"/OO", app.String()+"/OC")
	}
	var rows [][]string
	for _, f := range sparse.AllFormats {
		row := []string{formatName(f)}
		any := false
		for _, app := range t.Apps {
			oo := t.OO[app][f]
			oc := t.OC[app][f]
			row = append(row, fmt.Sprintf("%d", oo), fmt.Sprintf("%d", oc))
			any = any || oo > 0 || oc > 0
		}
		if any {
			rows = append(rows, row)
		}
	}
	return "Table VII: matrices favoring each format per application\n" +
		table(header, rows)
}

// ---------------------------------------------------------------------------
// E1 / E9 — Figures 2 and 6: PageRank speedup histograms.

// Histogram buckets per-run speedups.
type Histogram struct {
	Title   string
	Edges   []float64 // bucket edges; counts[i] covers [Edges[i], Edges[i+1])
	Counts  []int
	Minimum float64
	Maximum float64
}

// histEdges are the speedup buckets used by Figures 2 and 6.
var histEdges = []float64{0, 0.25, 0.5, 0.75, 0.95, 1.05, 1.25, 1.5, 2, math.Inf(1)}

func buildHistogram(title string, speedups []float64) *Histogram {
	h := &Histogram{
		Title:   title,
		Edges:   histEdges,
		Counts:  make([]int, len(histEdges)-1),
		Minimum: math.Inf(1),
		Maximum: math.Inf(-1),
	}
	for _, v := range speedups {
		if v < h.Minimum {
			h.Minimum = v
		}
		if v > h.Maximum {
			h.Maximum = v
		}
		idx := sort.SearchFloat64s(h.Edges, v)
		if idx > 0 {
			idx--
		}
		if idx >= len(h.Counts) {
			idx = len(h.Counts) - 1
		}
		h.Counts[idx]++
	}
	return h
}

// SlowdownFraction is the fraction of runs with speedup below the given
// threshold (Figure 2's point is that this is large for OO and Figure 6's
// that the OC selector drives it to near zero).
func (h *Histogram) SlowdownFraction(threshold float64) float64 {
	total, below := 0, 0
	for i, n := range h.Counts {
		total += n
		if h.Edges[i+1] <= threshold {
			below += n
		}
	}
	if total == 0 {
		return 0
	}
	return float64(below) / float64(total)
}

// Render prints the histogram with text bars.
func (h *Histogram) Render() string {
	var rows [][]string
	for i, n := range h.Counts {
		hi := fmt.Sprintf("%g", h.Edges[i+1])
		if math.IsInf(h.Edges[i+1], 1) {
			hi = "inf"
		}
		bar := ""
		for j := 0; j < n; j++ {
			bar += "#"
		}
		rows = append(rows, []string{
			fmt.Sprintf("[%g, %s)", h.Edges[i], hi),
			fmt.Sprintf("%d", n),
			bar,
		})
	}
	return h.Title + "\n" + table([]string{"Speedup", "Count", ""}, rows) +
		fmt.Sprintf("min %.3f  max %.3f\n", h.Minimum, h.Maximum)
}

// RunFig2 builds the histogram of PageRank speedups under the
// overhead-oblivious oracle selection (the paper's motivating Figure 2:
// even perfect OO predictions cause widespread slowdowns).
func (c *Context) RunFig2() (*Histogram, error) {
	sim, err := c.RunApp(AppPageRank)
	if err != nil {
		return nil, err
	}
	return buildHistogram(
		"Figure 2: PageRank overall speedups, oracle overhead-oblivious selection",
		sim.speedups(func(o SimOutcome) float64 { return o.OOCost })), nil
}

// RunFig6 builds the histogram of PageRank speedups under the trained
// overhead-conscious selector (the paper's Figure 6: slowdowns largely
// avoided).
func (c *Context) RunFig6() (*Histogram, error) {
	sim, err := c.RunApp(AppPageRank)
	if err != nil {
		return nil, err
	}
	return buildHistogram(
		"Figure 6: PageRank overall speedups, overhead-conscious selector",
		sim.speedups(func(o SimOutcome) float64 { return o.OCCost })), nil
}
