package experiments

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/gbt"
	"repro/internal/sparse"
	"repro/internal/trainer"
)

// ---------------------------------------------------------------------------
// A1 — implicit vs explicit overhead treatment (§III-A).
//
// The implicit design trains, per format, a single model that maps
// (matrix features, loop length) directly to the amortized overall cost.
// The explicit design (the paper's choice) decomposes the cost into the
// separately-predicted conversion and SpMV terms. This ablation compares
// the two on held-out matrices: agreement with the oracle's format choice
// and the realized speedup of each scheme's selections.

// AblationImplicit holds the comparison results.
type AblationImplicit struct {
	Iters []float64
	// Agreement with the oracle-optimal format, per scheme.
	ExplicitAgreement, ImplicitAgreement float64
	// Geometric-mean realized speedup of each scheme's selections.
	ExplicitSpeedup, ImplicitSpeedup float64
}

// implicitTrainIters are the loop lengths the implicit model sees during
// training.
var implicitTrainIters = []float64{10, 30, 100, 300, 1000, 3000}

// RunAblationImplicit trains the implicit models on the training corpus and
// compares both schemes on the evaluation corpus.
func (c *Context) RunAblationImplicit(iters ...float64) (*AblationImplicit, error) {
	if len(iters) == 0 {
		iters = []float64{20, 100, 500, 2000}
	}
	// Train the implicit per-format models: features + log(iters) ->
	// amortized cost (total cost / iters), which keeps the target scale
	// bounded across loop lengths.
	implicit := make(map[sparse.Format]*gbt.Model)
	for _, f := range sparse.AllFormats {
		if f == sparse.FmtCSR {
			continue
		}
		ds := &gbt.Dataset{}
		for _, s := range c.TrainSamples {
			conv, okc := s.ConvNorm[f]
			spmv, oks := s.SpMVNorm[f]
			if !okc || !oks {
				continue
			}
			for _, it := range implicitTrainIters {
				row := append(append([]float64(nil), s.Features...), math.Log(it))
				ds.X = append(ds.X, row)
				ds.Y = append(ds.Y, conv/it+spmv)
			}
		}
		if len(ds.Y) < 5*len(implicitTrainIters) {
			continue
		}
		m, err := gbt.Train(ds, nil, c.Opt.Params)
		if err != nil {
			return nil, fmt.Errorf("experiments: implicit model %v: %w", f, err)
		}
		implicit[f] = m
	}

	out := &AblationImplicit{Iters: iters}
	var expAgree, impAgree, total float64
	var expSp, impSp []float64
	for i := range c.EvalSamples {
		s := &c.EvalSamples[i]
		entry := c.EvalEntries[i]
		for _, it := range iters {
			oracleF := core.OracleDecide(s.ConvNorm, s.SpMVNorm, it)

			// Explicit scheme.
			dExp := c.decideOC(entry, s, it)
			fExp := dExp.Format

			// Implicit scheme: argmin over format models of amortized cost.
			fImp := sparse.FmtCSR
			bestAmortized := 1.0 // CSR amortized cost is exactly 1 per iteration
			for f, m := range implicit {
				if _, ok := s.SpMVNorm[f]; !ok {
					continue
				}
				row := append(append([]float64(nil), s.Features...), math.Log(it))
				if v := m.Predict(row); v < bestAmortized {
					bestAmortized = v
					fImp = f
				}
			}

			total++
			if fExp == oracleF {
				expAgree++
			}
			if fImp == oracleF {
				impAgree++
			}
			expSp = append(expSp, it/realizedCost(s, fExp, it))
			impSp = append(impSp, it/realizedCost(s, fImp, it))
		}
	}
	out.ExplicitAgreement = expAgree / total
	out.ImplicitAgreement = impAgree / total
	out.ExplicitSpeedup = geomean(expSp)
	out.ImplicitSpeedup = geomean(impSp)
	return out, nil
}

// realizedCost prices a chosen format with the true (oracle) costs.
func realizedCost(s *trainer.Sample, f sparse.Format, it float64) float64 {
	if f == sparse.FmtCSR {
		return it
	}
	conv, okc := s.ConvNorm[f]
	spmv, oks := s.SpMVNorm[f]
	if !okc || !oks {
		return it
	}
	return conv + spmv*it
}

// Render prints the comparison.
func (a *AblationImplicit) Render() string {
	return fmt.Sprintf(`Ablation A1: implicit vs explicit overhead treatment
oracle-agreement  explicit %.1f%%  implicit %.1f%%
realized speedup  explicit %.3fx  implicit %.3fx
`, 100*a.ExplicitAgreement, 100*a.ImplicitAgreement, a.ExplicitSpeedup, a.ImplicitSpeedup)
}

// ---------------------------------------------------------------------------
// A2 — the lazy-and-light gate switched off.
//
// Without the two-stage gate, the selector pays feature extraction and
// model inference on every run, including runs whose loops are too short
// for any conversion to pay off — the chicken-egg dilemma of §III-B. The
// ablation simulates both variants over the four applications.

// AblationGateRow compares gated vs ungated for one application.
type AblationGateRow struct {
	App AppKind
	// Speedups (geometric mean over runs).
	Gated, Ungated float64
	// Worst per-run speedup under each variant.
	GatedWorst, UngatedWorst float64
}

// AblationGate is the gate on/off comparison.
type AblationGate struct {
	Rows []AblationGateRow
	// AssumedHorizon is the remaining-iterations guess the ungated variant
	// must use (it decides before observing the loop).
	AssumedHorizon float64
}

// RunAblationGate simulates both variants.
func (c *Context) RunAblationGate(assumedHorizon float64) (*AblationGate, error) {
	if assumedHorizon <= 0 {
		assumedHorizon = 1000
	}
	out := &AblationGate{AssumedHorizon: assumedHorizon}
	for _, app := range AllApps {
		sim, err := c.RunApp(app)
		if err != nil {
			return nil, err
		}
		row := AblationGateRow{App: app, GatedWorst: math.Inf(1), UngatedWorst: math.Inf(1)}
		var gated, ungated []float64
		for _, o := range sim.Outcomes {
			s := &o.Trace.Sample
			w := o.Trace.App.SpMVPerIter()
			n := float64(o.Trace.Iterations)

			g := o.Baseline / o.OCCost
			gated = append(gated, g)
			if g < row.GatedWorst {
				row.GatedWorst = g
			}

			// Ungated: decide at iteration 0 with the assumed horizon,
			// always paying the prediction overhead.
			d := c.Preds.Decide(featureSet(s), blocksOf(o.Trace.Operand, c.Opt.Cfg.Lim.BSRBlockSize), assumedHorizon*w, c.Opt.Cfg.Lim, c.Opt.Cfg.Margin)
			predn := s.FeatureNorm + c.Opt.Stage2ModelSeconds/s.CSRTime
			cost := predn + realizedCost(s, d.Format, n*w)
			u := o.Baseline / cost
			ungated = append(ungated, u)
			if u < row.UngatedWorst {
				row.UngatedWorst = u
			}
		}
		row.Gated = geomean(gated)
		row.Ungated = geomean(ungated)
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// Render prints the comparison.
func (a *AblationGate) Render() string {
	var rows [][]string
	for _, r := range a.Rows {
		rows = append(rows, []string{
			r.App.String(),
			fmt.Sprintf("%.3f", r.Gated),
			fmt.Sprintf("%.3f", r.GatedWorst),
			fmt.Sprintf("%.3f", r.Ungated),
			fmt.Sprintf("%.3f", r.UngatedWorst),
		})
	}
	return fmt.Sprintf("Ablation A2: lazy-and-light gate on/off (ungated assumes %g remaining iterations)\n", a.AssumedHorizon) +
		table([]string{"Application", "Gated", "Gated worst", "Ungated", "Ungated worst"}, rows)
}

// ---------------------------------------------------------------------------
// A3 — normalized vs absolute prediction targets (§IV-C's normalization
// observation).

// AblationNormalizeRow compares CV errors of normalized vs absolute targets
// for one format.
type AblationNormalizeRow struct {
	Format sparse.Format
	// Mean relative CV error of the SpMV-time model under each target.
	NormalizedErr, AbsoluteErr float64
}

// AblationNormalize is the normalization ablation.
type AblationNormalize struct {
	Rows []AblationNormalizeRow
}

// RunAblationNormalize cross-validates SpMV-time models trained on
// normalized targets (T_spmv(f)/T_spmv(CSR)) against models trained on
// absolute seconds.
func (c *Context) RunAblationNormalize() (*AblationNormalize, error) {
	all := append(append([]trainer.Sample(nil), c.TrainSamples...), c.EvalSamples...)
	out := &AblationNormalize{}
	for _, f := range sparse.AllFormats {
		if f == sparse.FmtCSR {
			continue
		}
		norm := &gbt.Dataset{}
		abs := &gbt.Dataset{}
		for _, s := range all {
			v, ok := s.SpMVNorm[f]
			if !ok {
				continue
			}
			norm.X = append(norm.X, s.Features)
			norm.Y = append(norm.Y, v)
			abs.X = append(abs.X, s.Features)
			abs.Y = append(abs.Y, v*s.CSRTime)
		}
		if len(norm.Y) < 10 {
			continue
		}
		ncv, err := gbt.KFold(norm, 5, c.Opt.Params, c.Opt.Seed, 1e-3)
		if err != nil {
			return nil, err
		}
		// The absolute targets live on a tiny scale (seconds); the error
		// floor must scale accordingly or every error would vanish into it.
		acv, err := gbt.KFold(abs, 5, c.Opt.Params, c.Opt.Seed, 1e-9)
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, AblationNormalizeRow{
			Format:        f,
			NormalizedErr: ncv.MeanRel,
			AbsoluteErr:   acv.MeanRel,
		})
	}
	return out, nil
}

// Render prints the comparison.
func (a *AblationNormalize) Render() string {
	var rows [][]string
	for _, r := range a.Rows {
		rows = append(rows, []string{
			formatName(r.Format),
			fmt.Sprintf("%.1f%%", 100*r.NormalizedErr),
			fmt.Sprintf("%.1f%%", 100*r.AbsoluteErr),
		})
	}
	return "Ablation A3: CV relative error, normalized vs absolute SpMV-time targets\n" +
		table([]string{"Format", "Normalized", "Absolute"}, rows)
}
