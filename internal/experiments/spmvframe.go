package experiments

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/sparse"
)

// ---------------------------------------------------------------------------
// E2 — Table III: conversion cost in units of CSR SpMV calls.

// Table3Row is one format's conversion-cost distribution over the corpus.
type Table3Row struct {
	Format            sparse.Format
	NumValid          int
	Min, Median, Max  float64 // conversion time / CSR SpMV time
	MeanNormalization float64 // mean of the same ratio
}

// Table3 measures (through the oracle — "this part uses no prediction but
// actual performance measurements") how many CSR SpMV calls each conversion
// costs, reproducing the paper's Table III whose reported range is 9-270.
type Table3 struct {
	Rows []Table3Row
}

// RunTable3 computes the conversion-cost table on the evaluation corpus.
func (c *Context) RunTable3() *Table3 {
	out := &Table3{}
	for _, f := range sparse.AllFormats {
		if f == sparse.FmtCSR {
			continue
		}
		var ratios []float64
		for _, s := range c.EvalSamples {
			if v, ok := s.ConvNorm[f]; ok {
				ratios = append(ratios, v)
			}
		}
		if len(ratios) == 0 {
			continue
		}
		sort.Float64s(ratios)
		var mean float64
		for _, v := range ratios {
			mean += v
		}
		mean /= float64(len(ratios))
		out.Rows = append(out.Rows, Table3Row{
			Format:            f,
			NumValid:          len(ratios),
			Min:               ratios[0],
			Median:            ratios[len(ratios)/2],
			Max:               ratios[len(ratios)-1],
			MeanNormalization: mean,
		})
	}
	return out
}

// Render prints the table.
func (t *Table3) Render() string {
	rows := make([][]string, 0, len(t.Rows))
	for _, r := range t.Rows {
		rows = append(rows, []string{
			formatName(r.Format),
			fmt.Sprintf("%d", r.NumValid),
			fmt.Sprintf("%.1f", r.Min),
			fmt.Sprintf("%.1f", r.Median),
			fmt.Sprintf("%.1f", r.Max),
			fmt.Sprintf("%.1f", r.MeanNormalization),
		})
	}
	return "Table III: format conversion cost, in equivalent CSR SpMV calls\n" +
		table([]string{"Format", "#valid", "min", "median", "max", "mean"}, rows)
}

// ---------------------------------------------------------------------------
// E3 — Table IV: matrices favoring each format, overhead-oblivious vs
// overhead-conscious at different loop lengths.

// Table4 counts, for each format, how many evaluation matrices favor it
// under the overhead-oblivious criterion (min SpMV time) and under the
// overhead-conscious criterion at Iter = 100 and Iter = 1000 — the paper's
// Table IV. Oracle costs, no prediction.
type Table4 struct {
	Iters  []float64
	OO     map[sparse.Format]int
	OC     map[float64]map[sparse.Format]int
	Phases int
}

// RunTable4 computes the favorite-format distribution.
func (c *Context) RunTable4(iters ...float64) *Table4 {
	if len(iters) == 0 {
		iters = []float64{100, 1000}
	}
	out := &Table4{
		Iters: iters,
		OO:    make(map[sparse.Format]int),
		OC:    make(map[float64]map[sparse.Format]int),
	}
	for _, it := range iters {
		out.OC[it] = make(map[sparse.Format]int)
	}
	for _, s := range c.EvalSamples {
		out.OO[core.OverheadObliviousDecide(s.SpMVNorm)]++
		for _, it := range iters {
			out.OC[it][core.OracleDecide(s.ConvNorm, s.SpMVNorm, it)]++
		}
	}
	return out
}

// Render prints the table.
func (t *Table4) Render() string {
	header := []string{"Format", "OO"}
	for _, it := range t.Iters {
		header = append(header, fmt.Sprintf("OC(Iter=%g)", it))
	}
	var rows [][]string
	for _, f := range sparse.AllFormats {
		row := []string{formatName(f), fmt.Sprintf("%d", t.OO[f])}
		any := t.OO[f] > 0
		for _, it := range t.Iters {
			n := t.OC[it][f]
			row = append(row, fmt.Sprintf("%d", n))
			any = any || n > 0
		}
		if any {
			rows = append(rows, row)
		}
	}
	return "Table IV: number of matrices favoring each format\n" +
		table(header, rows)
}

// ---------------------------------------------------------------------------
// E5 — Figure 5: SpMVframe speedups vs loop iteration count.

// Fig5Point is one iteration-count group of bars.
type Fig5Point struct {
	Iters float64
	// SpeedupOC is the geometric-mean speedup of the trained predictors
	// (prediction overhead included).
	SpeedupOC float64
	// UBOC is the overhead-conscious upper bound (perfect predictions).
	UBOC float64
	// UBOO is the overhead-oblivious upper bound (true fastest-SpMV format,
	// conversion cost still paid, as in the paper).
	UBOO float64
}

// Fig5 reproduces Figure 5 on the SpMVframe workload: a loop of N SpMV
// calls around one matrix, swept over N. Baseline is CSR with no
// conversion.
type Fig5 struct {
	Points []Fig5Point
}

// RunFig5 sweeps the iteration counts (defaults match the regime the paper
// plots: short loops where OO slows down through long loops where
// conversion always pays).
func (c *Context) RunFig5(iters ...float64) *Fig5 {
	if len(iters) == 0 {
		iters = []float64{10, 50, 100, 500, 1000, 5000}
	}
	out := &Fig5{}
	for _, it := range iters {
		var oc, uboc, uboo []float64
		for i := range c.EvalSamples {
			s := &c.EvalSamples[i]
			entry := c.EvalEntries[i]
			base := it // cost of staying on CSR, in CSR-SpMV units

			// Trained OC: stage-2 prediction overhead = feature extraction
			// + model inference; SpMVframe has a known loop bound, so the
			// stage-1 gate is the trivial comparison it >= TH.
			ocCost := base
			if it >= float64(c.Opt.Cfg.TH) {
				d := c.decideOC(entry, s, it)
				predOverhead := s.FeatureNorm + c.Opt.Stage2ModelSeconds/s.CSRTime
				conv, okc := s.ConvNorm[d.Format]
				spmv, oks := s.SpMVNorm[d.Format]
				if d.Format == sparse.FmtCSR || !okc || !oks {
					ocCost = predOverhead + it
				} else {
					ocCost = predOverhead + conv + spmv*it
				}
			}
			oc = append(oc, base/ocCost)

			// Upper bound OC: oracle cost-benefit, no prediction overhead.
			fOC := core.OracleDecide(s.ConvNorm, s.SpMVNorm, it)
			ubocCost := s.ConvNorm[fOC] + s.SpMVNorm[fOC]*it
			uboc = append(uboc, base/ubocCost)

			// Upper bound OO: true fastest-SpMV format; its conversion must
			// still happen at runtime.
			fOO := core.OverheadObliviousDecide(s.SpMVNorm)
			ubooCost := s.ConvNorm[fOO] + s.SpMVNorm[fOO]*it
			uboo = append(uboo, base/ubooCost)
		}
		out.Points = append(out.Points, Fig5Point{
			Iters:     it,
			SpeedupOC: geomean(oc),
			UBOC:      geomean(uboc),
			UBOO:      geomean(uboo),
		})
	}
	return out
}

// Render prints the figure as a table of bar heights.
func (f *Fig5) Render() string {
	var rows [][]string
	for _, p := range f.Points {
		rows = append(rows, []string{
			fmt.Sprintf("%g", p.Iters),
			fmt.Sprintf("%.3f", p.SpeedupOC),
			fmt.Sprintf("%.3f", p.UBOC),
			fmt.Sprintf("%.3f", p.UBOO),
		})
	}
	return "Figure 5: SpMVframe speedups over CSR baseline (geometric mean)\n" +
		table([]string{"Iters", "SpeedupOC", "UB_OC", "UB_OO"}, rows)
}

// CheckShape verifies the qualitative claims of Figure 5: OO's upper bound
// must cause slowdowns at the shortest loop length, OC must never fall
// meaningfully below 1, and OC must dominate OO everywhere. Returns nil
// when the shape holds.
func (f *Fig5) CheckShape() error {
	if len(f.Points) == 0 {
		return fmt.Errorf("fig5: empty")
	}
	first := f.Points[0]
	if first.UBOO >= 1 {
		return fmt.Errorf("fig5: UB_OO = %.3f at Iters=%g, expected < 1 (slowdown)", first.UBOO, first.Iters)
	}
	for _, p := range f.Points {
		if p.UBOC < 1-1e-9 {
			return fmt.Errorf("fig5: UB_OC = %.3f < 1 at Iters=%g", p.UBOC, p.Iters)
		}
		if p.SpeedupOC < 0.95 {
			return fmt.Errorf("fig5: SpeedupOC = %.3f at Iters=%g", p.SpeedupOC, p.Iters)
		}
		if p.UBOC+1e-9 < p.UBOO && math.Abs(p.UBOC-p.UBOO) > 1e-6 {
			return fmt.Errorf("fig5: UB_OC %.3f below UB_OO %.3f at Iters=%g", p.UBOC, p.UBOO, p.Iters)
		}
	}
	return nil
}
