package experiments

import (
	"fmt"

	"repro/internal/sparse"
	"repro/internal/trainer"
)

// ---------------------------------------------------------------------------
// A4 — value of extending the format pool (the paper's §V-A remark that the
// approach "can be easily extended to the selection of other formats").
//
// The ablation compares the oracle overhead-conscious selection restricted
// to the paper's seven formats against the same selection over the pool
// including SELL-C-sigma, across several loop lengths. Any gain is benefit
// the extension delivers without touching the selection machinery.

// AblationSELLRow is one loop-length comparison.
type AblationSELLRow struct {
	Iters float64
	// PaperPool / ExtendedPool are geometric-mean realized speedups.
	PaperPool, ExtendedPool float64
	// SELLWins counts matrices where SELL is the extended pool's choice.
	SELLWins int
}

// AblationSELL is the format-pool ablation result.
type AblationSELL struct {
	Rows []AblationSELLRow
}

// RunAblationSELL evaluates both pools with oracle costs on the evaluation
// corpus.
func (c *Context) RunAblationSELL(iters ...float64) *AblationSELL {
	if len(iters) == 0 {
		iters = []float64{50, 200, 1000, 5000}
	}
	out := &AblationSELL{}
	for _, it := range iters {
		row := AblationSELLRow{Iters: it}
		var paper, ext []float64
		for i := range c.EvalSamples {
			s := &c.EvalSamples[i]
			fPaper := oracleDecidePool(s, it, sparse.PaperFormats)
			fExt := oracleDecidePool(s, it, sparse.AllFormats)
			paper = append(paper, it/realizedCost(s, fPaper, it))
			ext = append(ext, it/realizedCost(s, fExt, it))
			if fExt == sparse.FmtSELL {
				row.SELLWins++
			}
		}
		row.PaperPool = geomean(paper)
		row.ExtendedPool = geomean(ext)
		out.Rows = append(out.Rows, row)
	}
	return out
}

// oracleDecidePool is core.OracleDecide restricted to a format pool.
func oracleDecidePool(s *trainer.Sample, remaining float64, pool []sparse.Format) sparse.Format {
	best := sparse.FmtCSR
	bestCost := remaining
	for _, f := range pool {
		if f == sparse.FmtCSR {
			continue
		}
		conv, ok1 := s.ConvNorm[f]
		spmv, ok2 := s.SpMVNorm[f]
		if !ok1 || !ok2 {
			continue
		}
		cost := conv + spmv*remaining
		if cost < bestCost {
			bestCost = cost
			best = f
		}
	}
	return best
}

// Render prints the comparison.
func (a *AblationSELL) Render() string {
	var rows [][]string
	for _, r := range a.Rows {
		rows = append(rows, []string{
			fmt.Sprintf("%g", r.Iters),
			fmt.Sprintf("%.3f", r.PaperPool),
			fmt.Sprintf("%.3f", r.ExtendedPool),
			fmt.Sprintf("%d", r.SELLWins),
		})
	}
	return "Ablation A4: format pool with/without the SELL-C-sigma extension (oracle selection)\n" +
		table([]string{"Iters", "Paper pool", "With SELL", "SELL chosen"}, rows)
}
