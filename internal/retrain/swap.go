package retrain

import (
	"fmt"
	"math"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/features"
	"repro/internal/obs"
	"repro/internal/sparse"
	"repro/internal/trainer"
)

// This file is the control half of the loop: training a candidate bundle,
// gating it on a holdout of the newest samples, and hot-swapping accepted
// bundles into the Target.

// retrainLocked trains a candidate on the older samples, validates it
// per-format against the incumbent on the newest (held-out) samples, and
// swaps only when at least one format's models measurably improve. The
// merged bundle starts from the incumbent (Clone), so formats the candidate
// has no fresh evidence for — or does worse on — keep their proven models:
// a bad retraining round can never make the selector worse than it was,
// which is the overhead-conscious stance of the paper applied to the models
// themselves. Caller holds l.mu.
func (l *Loop) retrainLocked(res *TickResult) {
	l.retrains++
	res.Retrained = true

	nHold := int(math.Ceil(l.cfg.HoldoutFrac * float64(len(l.samples))))
	if nHold < 1 {
		nHold = 1
	}
	if nHold >= len(l.samples) {
		nHold = len(l.samples) - 1
	}
	train := l.samples[:len(l.samples)-nHold]
	holdout := l.samples[len(l.samples)-nHold:]

	cand, err := l.cfg.TrainFunc(train, l.cfg.GBT, l.cfg.GBTMinSamples)
	if err != nil {
		l.rejections++
		l.lastErr = fmt.Sprintf("training candidate: %v", err)
		res.Err = fmt.Errorf("retrain: %s", l.lastErr)
		return
	}

	incumbent := l.cfg.Target.Predictors()
	merged := incumbent.Clone()
	adopted := 0
	for _, f := range sparse.AllFormats {
		if f == sparse.FmtCSR || cand.ConvTime[f] == nil || cand.SpMVTime[f] == nil {
			continue
		}
		candErr, candN := holdoutErr(cand, f, holdout)
		incErr, _ := holdoutErr(incumbent, f, holdout)
		switch {
		case candN == 0:
			// No held-out evidence for this format: adopt only when the
			// incumbent has no model at all (any model beats none).
			if incumbent == nil || incumbent.ConvTime[f] == nil || incumbent.SpMVTime[f] == nil {
				merged.ConvTime[f] = cand.ConvTime[f]
				merged.SpMVTime[f] = cand.SpMVTime[f]
				adopted++
			}
		case candErr <= incErr:
			merged.ConvTime[f] = cand.ConvTime[f]
			merged.SpMVTime[f] = cand.SpMVTime[f]
			adopted++
		}
	}
	if adopted == 0 {
		l.rejections++
		l.lastErr = "candidate rejected: no format beat the incumbent on the holdout"
		l.cfg.Logger.Warn("retrain candidate rejected", "holdout", len(holdout), "train", len(train))
		return
	}

	var gen int64 = 1
	if incumbent != nil {
		gen = incumbent.Generation + 1
	}
	merged.Generation = gen
	updated := l.cfg.Target.SetPredictors(merged)
	l.swaps++
	l.lastSwapAt = l.cfg.Clock.Now()
	l.lastErr = ""
	res.Swapped = true
	res.Generation = gen
	res.HandlesUpdated = updated

	// A swap resets the drift evidence: the errors and regret on file were
	// accrued against the previous generation and would otherwise re-trigger
	// retraining forever.
	for _, cs := range l.classes {
		cs.errs = cs.errs[:0]
		cs.regret = 0
	}

	l.cfg.Logger.Info("retrain swap accepted",
		"generation", gen, "adopted_formats", adopted, "handles_updated", updated,
		"train", len(train), "holdout", len(holdout))

	if l.cfg.SaveDir != "" {
		dir := filepath.Join(l.cfg.SaveDir, fmt.Sprintf("gen-%04d", gen))
		man := trainer.Manifest{
			NumFeatures: features.NumFeatures,
			CreatedAt:   l.cfg.Clock.Now().UTC().Format(time.RFC3339),
			CorpusCount: len(train),
			Oracle:      "online",
		}
		if err := trainer.SaveBundle(dir, merged, man); err != nil {
			l.lastErr = fmt.Sprintf("persisting generation %d: %v", gen, err)
			res.Err = fmt.Errorf("retrain: %s", l.lastErr)
			l.cfg.Logger.Warn("retrain bundle persistence failed", "dir", dir, "error", err)
		}
	}
}

// holdoutErr scores a bundle's two models for format f on the held-out
// samples: the mean relative error over every (conversion, SpMV) target a
// holdout sample measured for f. n is how many targets contributed — 0
// means no evidence and err is meaningless. A nil bundle or missing models
// return +Inf, so "incumbent has no model" always loses to any candidate.
func holdoutErr(p *core.Predictors, f sparse.Format, holdout []trainer.Sample) (err float64, n int) {
	if p == nil || p.ConvTime[f] == nil || p.SpMVTime[f] == nil {
		return math.Inf(1), 0
	}
	var sum float64
	for _, s := range holdout {
		if v, ok := s.SpMVNorm[f]; ok {
			sum += relErr(p.SpMVTime[f].Predict(s.Features), v)
			n++
		}
		if v, ok := s.ConvNorm[f]; ok {
			sum += relErr(p.ConvTime[f].Predict(s.Features), v)
			n++
		}
	}
	if n == 0 {
		return math.Inf(1), 0
	}
	return sum / float64(n), n
}

func relErr(pred, actual float64) float64 {
	denom := math.Abs(actual)
	if denom < relErrFloor {
		denom = relErrFloor
	}
	return math.Abs(pred-actual) / denom
}

// ClassStatus is one workload class's drift evidence, for /debug/retrain.
type ClassStatus struct {
	Key           string  `json:"key"`
	Seen          int64   `json:"traces_seen"`
	Window        int     `json:"window_len"`
	MeanRelErr    float64 `json:"mean_rel_err"`
	RegretSeconds float64 `json:"regret_seconds"`
	Drifted       bool    `json:"drifted"`
}

// Status is the loop's observable state, served on /debug/retrain.
type Status struct {
	Generation     int64         `json:"generation"`
	TracesSeen     int64         `json:"traces_seen"`
	SamplesHeld    int           `json:"samples_held"`
	SamplesTotal   int64         `json:"samples_total"`
	DriftEvents    int64         `json:"drift_events"`
	Retrains       int64         `json:"retrains"`
	Swaps          int64         `json:"swaps"`
	Rejections     int64         `json:"rejections"`
	LastSwapAt     *time.Time    `json:"last_swap_at,omitempty"`
	LastError      string        `json:"last_error,omitempty"`
	ErrThreshold   float64       `json:"err_threshold"`
	RegretSeconds  float64       `json:"regret_threshold_seconds"`
	MinSamples     int           `json:"min_samples"`
	Classes        []ClassStatus `json:"classes,omitempty"`
	PendingTraceID uint64        `json:"next_trace_id"`
}

// Status snapshots the loop for the debug endpoint.
func (l *Loop) Status() Status {
	l.mu.Lock()
	defer l.mu.Unlock()
	st := Status{
		Generation:     l.generationLocked(),
		TracesSeen:     l.tracesSeen,
		SamplesHeld:    len(l.samples),
		SamplesTotal:   l.harvested,
		DriftEvents:    l.driftEvents,
		Retrains:       l.retrains,
		Swaps:          l.swaps,
		Rejections:     l.rejections,
		LastError:      l.lastErr,
		ErrThreshold:   l.cfg.ErrThreshold,
		RegretSeconds:  l.cfg.RegretThreshold,
		MinSamples:     l.cfg.MinSamples,
		PendingTraceID: l.lastSeen + 1,
	}
	if !l.lastSwapAt.IsZero() {
		t := l.lastSwapAt
		st.LastSwapAt = &t
	}
	for key, cs := range l.classes {
		st.Classes = append(st.Classes, ClassStatus{
			Key:           key,
			Seen:          cs.seen,
			Window:        len(cs.errs),
			MeanRelErr:    cs.meanErr(),
			RegretSeconds: cs.regret,
			Drifted:       l.driftedLocked(cs),
		})
	}
	sort.Slice(st.Classes, func(i, k int) bool { return st.Classes[i].Key < st.Classes[k].Key })
	return st
}

func (l *Loop) generationLocked() int64 {
	if p := l.cfg.Target.Predictors(); p != nil {
		return p.Generation
	}
	return 0
}

// MetricFamilies renders the loop's counters as Prometheus families; the
// server appends them to its /metrics exposition.
func (l *Loop) MetricFamilies() []obs.Family {
	l.mu.Lock()
	defer l.mu.Unlock()
	return []obs.Family{
		obs.ScalarFamily("ocsd_retrain_generation", "Generation of the live predictor bundle (0 = offline seed).", obs.KindGauge, float64(l.generationLocked())),
		obs.ScalarFamily("ocsd_retrain_traces_seen_total", "Decision traces inspected by the retrainer.", obs.KindCounter, float64(l.tracesSeen)),
		obs.ScalarFamily("ocsd_retrain_samples_held", "Training samples currently held in the harvest ring.", obs.KindGauge, float64(len(l.samples))),
		obs.ScalarFamily("ocsd_retrain_drift_events_total", "Ticks on which at least one workload class exceeded a drift threshold.", obs.KindCounter, float64(l.driftEvents)),
		obs.ScalarFamily("ocsd_retrain_retrains_total", "Candidate bundle trainings attempted.", obs.KindCounter, float64(l.retrains)),
		obs.ScalarFamily("ocsd_retrain_swaps_total", "Candidate bundles accepted by the holdout gate and hot-swapped.", obs.KindCounter, float64(l.swaps)),
		obs.ScalarFamily("ocsd_retrain_rejections_total", "Candidate bundles refused (worse holdout error or training failure).", obs.KindCounter, float64(l.rejections)),
	}
}
