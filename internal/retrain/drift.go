package retrain

import (
	"fmt"

	"repro/internal/features"
	"repro/internal/obs"
	"repro/internal/sparse"
	"repro/internal/trainer"
)

// This file is the observation half of the loop: walking the journal,
// turning completed traces into trainer.Samples, and maintaining the
// per-workload-class drift statistics.

// relErrFloor guards relative-error denominators against near-zero measured
// times (mirrors trainer.relErrFloor).
const relErrFloor = 1e-3

// classState tracks one workload class's drift evidence: a sliding window
// of relative prediction errors and the cumulative regret its decisions
// have accrued since the last accepted swap.
type classState struct {
	errs   []float64 // sliding window, oldest first
	regret float64   // cumulative ledger regret seconds
	seen   int64     // traces attributed to this class
}

func (cs *classState) push(relErr float64, window int) {
	cs.errs = append(cs.errs, relErr)
	if len(cs.errs) > window {
		cs.errs = cs.errs[len(cs.errs)-window:]
	}
}

func (cs *classState) meanErr() float64 {
	if len(cs.errs) == 0 {
		return 0
	}
	var sum float64
	for _, e := range cs.errs {
		sum += e
	}
	return sum / float64(len(cs.errs))
}

// driftedLocked applies the two thresholds: windowed mean relative
// prediction error (needs MinWindow observations to count) or cumulative
// regret. Caller holds l.mu.
func (l *Loop) driftedLocked(cs *classState) bool {
	if len(cs.errs) >= l.cfg.MinWindow && cs.meanErr() > l.cfg.ErrThreshold {
		return true
	}
	return cs.regret > l.cfg.RegretThreshold
}

// classKey buckets a Table I feature vector into a coarse workload class:
// density band x row-irregularity (CV) band x diagonal-structure band. The
// three axes are the same near-zero-cost structure the stage-0 classifier
// reads, so a class groups matrices the cost model treats alike — drift in
// one band (say, diag-heavy matrices suddenly mispredicted after a kernel
// regression) does not need the whole population to misbehave before it
// trips the threshold.
func classKey(fv []float64) string {
	// Canonical Vector() indices: 18 = "d" (density), 19 = "cv"
	// (row-length coefficient of variation), 4 = "NTdiags_ratio".
	band := func(v float64, lo, hi float64) int {
		switch {
		case v < lo:
			return 0
		case v < hi:
			return 1
		default:
			return 2
		}
	}
	d := band(fv[18], 0.01, 0.1)
	cv := band(fv[19], 0.3, 1.0)
	dg := band(fv[4], 0.3, 0.7)
	return fmt.Sprintf("d%d.cv%d.dg%d", d, cv, dg)
}

// harvestLocked walks the journal from the last fully-processed ID and
// ingests every consumable trace. A stage-2 trace whose ledger has no post
// calls yet blocks the walk (its realized time is not measured yet) until
// PendingGrace newer IDs exist, after which it is skipped for good.
// Returns how many traces became samples. Caller holds l.mu.
func (l *Loop) harvestLocked() int {
	j := l.cfg.Journal
	last := j.LastID()
	n := 0
	for id := l.lastSeen + 1; id <= last; id++ {
		tr, ok := j.Get(id)
		if !ok { // evicted before we got to it
			l.lastSeen = id
			l.tracesSeen++
			continue
		}
		if !consumable(tr, l.cfg.MinPostCalls) {
			if pending(tr, l.cfg.MinPostCalls) && last-id < l.cfg.PendingGrace {
				// Its ledger may still fill in; resume here next tick.
				break
			}
			l.lastSeen = id
			l.tracesSeen++
			continue
		}
		l.ingestLocked(tr)
		l.lastSeen = id
		l.tracesSeen++
		n++
	}
	return n
}

// consumable reports whether a trace carries everything a training sample
// needs: a completed stage-2 decision with the feature vector recorded and a
// ledger that has measured at least minPost post-decision calls.
func consumable(tr obs.DecisionTrace, minPost int64) bool {
	return tr.Stage2Ran && !tr.Canceled &&
		len(tr.Features) == features.NumFeatures &&
		tr.Ledger.BaselineSpMVSeconds > 0 &&
		tr.Ledger.PostSpMVCalls >= minPost &&
		tr.Ledger.RealizedSpMVSeconds > 0
}

// pending reports whether a not-yet-consumable trace could still become
// consumable (its handle just hasn't served post-decision calls yet).
func pending(tr obs.DecisionTrace, minPost int64) bool {
	return tr.Stage2Ran && !tr.Canceled &&
		len(tr.Features) == features.NumFeatures &&
		tr.Ledger.BaselineSpMVSeconds > 0 &&
		tr.Ledger.PostSpMVCalls < minPost
}

// ingestLocked converts one consumable trace into a trainer.Sample and
// folds its prediction error + regret into the drift state of its workload
// class. Caller holds l.mu.
func (l *Loop) ingestLocked(tr obs.DecisionTrace) {
	led := tr.Ledger
	name := tr.Label
	if name == "" {
		name = fmt.Sprintf("trace-%d", tr.ID)
	}
	s := trainer.Sample{
		Name:     name,
		Features: tr.Features,
		CSRTime:  led.BaselineSpMVSeconds,
		ConvNorm: make(map[sparse.Format]float64),
		SpMVNorm: map[sparse.Format]float64{sparse.FmtCSR: 1},
	}
	if tr.Converted {
		if f, err := sparse.ParseFormat(tr.Chosen); err == nil && f != sparse.FmtCSR {
			// The only locally *measured* per-format truths are for the
			// format the handle actually ran on: realized per-call SpMV time
			// and the conversion the wrapper timed. Normalize by the
			// self-measured baseline, exactly as the offline oracle does.
			s.SpMVNorm[f] = led.RealizedSpMVSeconds / led.BaselineSpMVSeconds
			// A conversion-cache hit performed no conversion on this handle
			// (ConvertSeconds is 0 by construction, the publisher paid the
			// bill) — feeding that 0 in as a timing would teach the trainer
			// that conversion is free. Keep only genuinely measured costs.
			if !tr.ConvCacheHit {
				s.ConvNorm[f] = tr.ConvertSeconds / led.BaselineSpMVSeconds
			}
		}
	}
	l.samples = append(l.samples, s)
	if len(l.samples) > l.cfg.MaxSamples {
		l.samples = l.samples[len(l.samples)-l.cfg.MaxSamples:]
	}
	l.harvested++

	key := classKey(tr.Features)
	cs := l.classes[key]
	if cs == nil {
		cs = &classState{}
		l.classes[key] = cs
	}
	denom := led.RealizedSpMVSeconds
	if denom < relErrFloor*led.BaselineSpMVSeconds {
		denom = relErrFloor * led.BaselineSpMVSeconds
	}
	relErr := (led.PredictedSpMVSeconds - led.RealizedSpMVSeconds) / denom
	if relErr < 0 {
		relErr = -relErr
	}
	cs.push(relErr, l.cfg.Window)
	cs.regret += led.RegretSeconds
	cs.seen++
}
