// Package retrain closes the loop the ROADMAP calls "close the loop": it
// turns the decision journal's passive telemetry into control. The paper
// trains its stage-2 cost models offline (§IV-C) and ships them frozen; a
// long-running ocsd deployment, however, measures the truth on every
// decision — the obs.Ledger holds realized-vs-predicted per-call SpMV time
// and cumulative regret for each trace. This package consumes completed
// traces as they accumulate, converts them into trainer.Samples with locally
// *measured* normalized times, watches per-workload-class drift (windowed
// mean relative prediction error, cumulative regret), and when drift crosses
// the configured thresholds retrains the conversion/SpMV regressors with
// trainer.Train, validates the candidate on a holdout of the most recent
// samples (refusing to swap when it does worse than the incumbent), and
// hot-swaps the accepted bundle into the live selectors through the Target.
//
// The design follows the ML-driven auto-selection loop of Morpheus
// (arXiv:2303.05098) adapted to the paper's overhead accounting: drift is
// detected on the exact quantities the T_affected ledger already maintains,
// so the retrainer adds no instrumentation of its own to the decision path.
package retrain

import (
	"fmt"
	"log/slog"
	"strconv"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/gbt"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/timing"
	"repro/internal/trainer"
)

// Target is the live selector population the loop swaps accepted bundles
// into. The server implements it: Predictors returns the bundle new handles
// are built with, SetPredictors publishes a new bundle for future handles
// AND pushes it into every registered handle whose pipeline has not decided
// yet, returning how many handles were updated. The retrainer never mutates
// a bundle in place — Predictors values are immutable once published.
type Target interface {
	Predictors() *core.Predictors
	SetPredictors(p *core.Predictors) int
}

// Config tunes the loop. Zero values get the documented defaults; Journal
// and Target are required.
type Config struct {
	// Journal is the decision journal the loop harvests traces from.
	Journal *obs.Journal
	// Target receives accepted bundles (the server).
	Target Target
	// Clock supplies timestamps (status, bundle manifests); nil = wall
	// clock. Inject a timing.FakeClock for deterministic tests.
	Clock timing.Clock
	// Team is the worker team each tick's work is dispatched through; nil =
	// parallel.Default(). The loop's own goroutine only sleeps and
	// dispatches — it never parks on a team worker between ticks.
	Team *parallel.Team
	// Interval is the tick period of the background loop (default 30s).
	// Tests skip Start entirely and call Tick directly.
	Interval time.Duration

	// MinSamples is how many harvested samples must exist before a drift
	// event is allowed to trigger retraining (default 8).
	MinSamples int
	// MaxSamples bounds the sample ring; oldest are dropped (default 512).
	MaxSamples int
	// Window is the per-class relative-error window length (default 32).
	Window int
	// MinWindow is how many observations a class needs before its windowed
	// mean error counts as evidence (default 4).
	MinWindow int
	// ErrThreshold is the windowed mean relative prediction error above
	// which a class is drifted (default 0.5: predictions off by 50%).
	ErrThreshold float64
	// RegretThreshold is the cumulative regret (seconds) accumulated by a
	// class above which it is drifted regardless of relative error
	// (default 1s).
	RegretThreshold float64
	// HoldoutFrac is the fraction of the newest samples reserved for
	// candidate validation, never trained on (default 0.25).
	HoldoutFrac float64
	// MinPostCalls is how many post-decision SpMV calls a trace's ledger
	// needs before the trace is harvested — its realized per-call time is
	// meaningless before the first (default 1).
	MinPostCalls int64
	// PendingGrace bounds how long harvesting waits for a stage-2 trace
	// whose ledger has no post calls yet: once the journal has advanced
	// this many IDs past it, the trace is skipped for good (default 64).
	PendingGrace uint64

	// GBT are the training hyperparameters (zero = gbt.DefaultParams()).
	GBT gbt.Params
	// GBTMinSamples is trainer.Train's per-format sample floor (default 2).
	GBTMinSamples int
	// TrainFunc builds a candidate bundle from the training split; nil =
	// trainer.Train. Tests inject poisoned candidates through it.
	TrainFunc func(samples []trainer.Sample, p gbt.Params, minSamples int) (*core.Predictors, error)

	// SaveDir, when non-empty, receives one trainer.SaveBundle directory
	// per accepted swap (gen-0001, gen-0002, ...).
	SaveDir string
	// Logger receives the loop's structured logs; nil = slog.Default().
	Logger *slog.Logger
	// Tracer, when non-nil, receives one root span per tick (service
	// "retrain", name "retrain.tick") annotated with what the tick did, so
	// background model refreshes are inspectable through the same
	// /v1/spans plumbing as request traffic.
	Tracer *obs.Tracer
}

func (c Config) withDefaults() Config {
	if c.Clock == nil {
		c.Clock = timing.WallClock{}
	}
	if c.Interval <= 0 {
		c.Interval = 30 * time.Second
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 8
	}
	if c.MaxSamples <= 0 {
		c.MaxSamples = 512
	}
	if c.Window <= 0 {
		c.Window = 32
	}
	if c.MinWindow <= 0 {
		c.MinWindow = 4
	}
	if c.ErrThreshold <= 0 {
		c.ErrThreshold = 0.5
	}
	if c.RegretThreshold <= 0 {
		c.RegretThreshold = 1.0
	}
	if c.HoldoutFrac <= 0 || c.HoldoutFrac >= 1 {
		c.HoldoutFrac = 0.25
	}
	if c.MinPostCalls <= 0 {
		c.MinPostCalls = 1
	}
	if c.PendingGrace == 0 {
		c.PendingGrace = 64
	}
	if c.GBT.NumRounds == 0 {
		c.GBT = gbt.DefaultParams()
	}
	if c.GBTMinSamples <= 0 {
		c.GBTMinSamples = 2
	}
	if c.TrainFunc == nil {
		c.TrainFunc = trainer.Train
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	return c
}

// Loop is the online retrainer. Construct with New, drive with Start/Stop
// (production) or Tick (tests).
type Loop struct {
	cfg Config

	mu       sync.Mutex
	samples  []trainer.Sample // harvest ring, oldest first
	classes  map[string]*classState
	lastSeen uint64 // highest journal ID fully processed

	// Counters, all under mu.
	tracesSeen  int64 // traces inspected (consumed or permanently skipped)
	harvested   int64 // traces converted into samples
	driftEvents int64 // ticks on which at least one class was drifted
	retrains    int64 // candidate trainings attempted
	swaps       int64 // candidates accepted and hot-swapped
	rejections  int64 // candidates refused by the holdout gate (or training failures)
	lastErr     string
	lastSwapAt  time.Time

	running bool
	stop    chan struct{}
	wg      sync.WaitGroup
}

// New builds a Loop. Journal and Target are required.
func New(cfg Config) (*Loop, error) {
	if cfg.Journal == nil {
		return nil, fmt.Errorf("retrain: Config.Journal is required")
	}
	if cfg.Target == nil {
		return nil, fmt.Errorf("retrain: Config.Target is required")
	}
	return &Loop{cfg: cfg.withDefaults(), classes: make(map[string]*classState)}, nil
}

func (l *Loop) team() *parallel.Team {
	if l.cfg.Team != nil {
		return l.cfg.Team
	}
	return parallel.Default()
}

// Start launches the background loop: a ticker goroutine that dispatches
// each tick's work through the worker team and waits for it before sleeping
// again, so ticks never overlap and the loop never parks on a team worker
// between ticks. Idempotent.
func (l *Loop) Start() {
	l.mu.Lock()
	if l.running {
		l.mu.Unlock()
		return
	}
	l.running = true
	l.stop = make(chan struct{})
	stop := l.stop
	l.mu.Unlock()

	l.wg.Add(1)
	go func() {
		defer l.wg.Done()
		tick := time.NewTicker(l.cfg.Interval)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				done := make(chan struct{})
				l.team().Go(func() {
					defer close(done)
					l.Tick()
				})
				select {
				case <-done:
				case <-stop:
					<-done // let the in-flight tick finish cleanly
					return
				}
			}
		}
	}()
}

// Stop halts the background loop and waits for any in-flight tick.
// Idempotent; the Loop remains usable via Tick afterwards.
func (l *Loop) Stop() {
	l.mu.Lock()
	if !l.running {
		l.mu.Unlock()
		return
	}
	l.running = false
	close(l.stop)
	l.mu.Unlock()
	l.wg.Wait()
}

// TickResult reports what one tick did, for tests and logs.
type TickResult struct {
	// Harvested is how many new traces became samples this tick.
	Harvested int
	// Drifted lists the workload classes over threshold this tick.
	Drifted []string
	// Retrained reports that a candidate was trained.
	Retrained bool
	// Swapped reports that the candidate passed the holdout gate and was
	// installed; Generation is the new bundle generation when it was.
	Swapped    bool
	Generation int64
	// HandlesUpdated is how many live handles received the new bundle.
	HandlesUpdated int
	// Err carries a training/persistence failure (the loop keeps running).
	Err error
}

// Tick runs one harvest→drift→retrain→validate→swap cycle synchronously.
// Production ticks come from Start's goroutine; tests call it directly for
// deterministic scheduling.
func (l *Loop) Tick() TickResult {
	l.mu.Lock()
	defer l.mu.Unlock()

	var res TickResult
	if tr := l.cfg.Tracer; tr != nil {
		sp := tr.StartSpan("retrain.tick", obs.SpanContext{})
		defer func() {
			sp.SetAttr("harvested", strconv.Itoa(res.Harvested))
			sp.SetAttr("drifted", strconv.Itoa(len(res.Drifted)))
			sp.SetAttr("retrained", strconv.FormatBool(res.Retrained))
			sp.SetAttr("swapped", strconv.FormatBool(res.Swapped))
			if res.Swapped {
				sp.SetAttr("generation", strconv.FormatInt(res.Generation, 10))
			}
			sp.End()
		}()
	}
	res.Harvested = l.harvestLocked()

	for key, cs := range l.classes {
		if l.driftedLocked(cs) {
			res.Drifted = append(res.Drifted, key)
		}
	}
	if len(res.Drifted) == 0 {
		return res
	}
	l.driftEvents++
	if len(l.samples) < l.cfg.MinSamples {
		l.lastErr = fmt.Sprintf("drift in %v but only %d/%d samples", res.Drifted, len(l.samples), l.cfg.MinSamples)
		return res
	}
	l.retrainLocked(&res)
	return res
}
