package retrain_test

import (
	"math"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/features"
	"repro/internal/gbt"
	"repro/internal/matgen"
	"repro/internal/obs"
	"repro/internal/retrain"
	"repro/internal/sparse"
	"repro/internal/timing"
	"repro/internal/trainer"
)

// fakeTarget is a minimal retrain.Target: a published bundle pointer plus a
// fixed live-handle count.
type fakeTarget struct {
	preds   *core.Predictors
	handles int
	swaps   int
}

func (f *fakeTarget) Predictors() *core.Predictors { return f.preds }
func (f *fakeTarget) SetPredictors(p *core.Predictors) int {
	f.preds = p
	f.swaps++
	return f.handles
}

// featVec extracts a real Table I vector so fabricated traces look exactly
// like production ones.
func featVec(t *testing.T, seed int64) []float64 {
	t.Helper()
	m, err := matgen.Generate(matgen.Spec{
		Name: "retrain-fixture", Family: matgen.FamBanded, Size: 300, Degree: 8, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return features.Extract(m).Vector()
}

// appendConverted fabricates one completed converted-to-ELL decision trace:
// baseline 1ms, conversion 4ms, the model predicted predictedNorm x baseline
// per call, and post-decision calls measured realizedNorm x baseline.
func appendConverted(j *obs.Journal, fv []float64, predictedNorm, realizedNorm, regret float64) uint64 {
	const baseline = 1e-3
	tr := obs.DecisionTrace{
		Label:          "fixture",
		Stage2Ran:      true,
		Chosen:         sparse.FmtELL.String(),
		Converted:      true,
		Features:       fv,
		ConvertSeconds: 4 * baseline,
		Ledger: obs.Ledger{
			BaselineSpMVSeconds:  baseline,
			PredictedSpMVSeconds: predictedNorm * baseline,
			RealizedSpMVSeconds:  realizedNorm * baseline,
			PostSpMVCalls:        5,
			RegretSeconds:        regret,
		},
	}
	return j.Append(tr)
}

// loopConfig is the deterministic test configuration: FakeClock, synchronous
// ticks (Start never called), thresholds sized for a dozen fabricated traces.
func loopConfig(j *obs.Journal, tgt retrain.Target) retrain.Config {
	clk := timing.NewFakeClock()
	clk.SetAutoStep(time.Millisecond)
	return retrain.Config{
		Journal:    j,
		Target:     tgt,
		Clock:      clk,
		MinSamples: 8,
		MaxSamples: 12,
		MinWindow:  4,
		// Defaults elsewhere: ErrThreshold 0.5, RegretThreshold 1s,
		// HoldoutFrac 0.25, GBT deterministic (subsample 1.0).
	}
}

// TestTickEmptyJournalNoOp pins the quiescent state: no traces, no drift,
// no training, generation 0.
func TestTickEmptyJournalNoOp(t *testing.T) {
	tgt := &fakeTarget{handles: 3}
	l, err := retrain.New(loopConfig(obs.NewJournal(0), tgt))
	if err != nil {
		t.Fatal(err)
	}
	res := l.Tick()
	if res.Harvested != 0 || len(res.Drifted) != 0 || res.Retrained || res.Swapped {
		t.Fatalf("empty journal tick = %+v, want all-zero", res)
	}
	st := l.Status()
	if st.Generation != 0 || st.Swaps != 0 || st.Retrains != 0 || st.SamplesHeld != 0 {
		t.Fatalf("status = %+v, want untouched", st)
	}
	if tgt.swaps != 0 {
		t.Fatal("SetPredictors called without a swap")
	}
}

// TestDriftRetrainSwapGolden scripts the full drift→retrain→validate→swap
// sequence twice with exact generation counts. The fabricated truth is
// constant (every sample's normalized ELL SpMV time is the same), so the
// GBT — whose initial prediction is the target mean and whose residuals are
// then exactly zero — trains to a bit-exact constant model and every
// holdout comparison is deterministic.
//
// Round 1: the (absent) seed model predicted 0.05x while reality measured
// 1.0x — relative error 0.95 over every trace, far past the 0.5 threshold.
// The candidate (trained on measured samples) predicts 1.0 and there is no
// incumbent to beat, so generation 1 installs.
//
// Round 2: new traces contradict generation 1 (realized 3.0x vs its
// predicted 1.0x, relative error 2/3). MaxSamples=12 has evicted every
// round-1 sample by then, so the candidate trains purely on 3.0x truth,
// beats generation 1 on the holdout, and generation 2 installs.
func TestDriftRetrainSwapGolden(t *testing.T) {
	j := obs.NewJournal(0)
	tgt := &fakeTarget{handles: 7}
	dir := t.TempDir()
	cfg := loopConfig(j, tgt)
	cfg.SaveDir = dir
	l, err := retrain.New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	for seed := int64(1); seed <= 12; seed++ {
		appendConverted(j, featVec(t, seed), 0.05, 1.0, 0.004)
	}
	res := l.Tick()
	if res.Harvested != 12 {
		t.Fatalf("harvested %d, want 12", res.Harvested)
	}
	if len(res.Drifted) == 0 || !res.Retrained || !res.Swapped {
		t.Fatalf("round 1 = %+v, want drift+retrain+swap", res)
	}
	if res.Generation != 1 || res.HandlesUpdated != 7 {
		t.Fatalf("generation %d (handles %d), want 1 (7)", res.Generation, res.HandlesUpdated)
	}
	if tgt.preds == nil || tgt.preds.Generation != 1 || tgt.swaps != 1 {
		t.Fatalf("target bundle gen=%v swaps=%d, want 1/1", tgt.preds, tgt.swaps)
	}
	// The accepted model reproduces the constant truth exactly.
	fv := featVec(t, 3)
	if got := tgt.preds.SpMVTime[sparse.FmtELL].Predict(fv); !closeTo(got, 1.0) {
		t.Errorf("gen-1 SpMV norm prediction = %g, want 1.0", got)
	}
	if got := tgt.preds.ConvTime[sparse.FmtELL].Predict(fv); !closeTo(got, 4.0) {
		t.Errorf("gen-1 conv norm prediction = %g, want 4.0", got)
	}

	// Idle tick: the swap reset the drift evidence; nothing may move.
	res = l.Tick()
	if res.Harvested != 0 || len(res.Drifted) != 0 || res.Retrained || res.Swapped {
		t.Fatalf("idle tick = %+v, want no-op", res)
	}
	if st := l.Status(); st.Generation != 1 || st.Swaps != 1 || st.Retrains != 1 {
		t.Fatalf("post-idle status = %+v, want gen/swaps/retrains = 1/1/1", st)
	}

	// Round 2: reality shifts under generation 1.
	for seed := int64(21); seed <= 32; seed++ {
		appendConverted(j, featVec(t, seed), 1.0, 3.0, 0.004)
	}
	res = l.Tick()
	if !res.Swapped || res.Generation != 2 {
		t.Fatalf("round 2 = %+v, want swap to generation 2", res)
	}
	if got := tgt.preds.SpMVTime[sparse.FmtELL].Predict(fv); !closeTo(got, 3.0) {
		t.Errorf("gen-2 SpMV norm prediction = %g, want 3.0", got)
	}

	st := l.Status()
	if st.Generation != 2 || st.Swaps != 2 || st.Retrains != 2 || st.Rejections != 0 {
		t.Fatalf("final status = %+v, want gen 2, swaps 2, retrains 2, rejections 0", st)
	}
	if st.TracesSeen != 24 || st.SamplesHeld != 12 {
		t.Fatalf("traces seen %d / samples held %d, want 24 / 12 (ring evicted round 1)",
			st.TracesSeen, st.SamplesHeld)
	}

	// Both accepted bundles persisted and load back with matching schema.
	for gen, want := range map[string]float64{"gen-0001": 1.0, "gen-0002": 3.0} {
		p, man, err := trainer.LoadBundle(filepath.Join(dir, gen), features.NumFeatures)
		if err != nil {
			t.Fatalf("loading %s: %v", gen, err)
		}
		if man.Oracle != "online" {
			t.Errorf("%s manifest oracle %q, want online", gen, man.Oracle)
		}
		if got := p.SpMVTime[sparse.FmtELL].Predict(fv); !closeTo(got, want) {
			t.Errorf("%s predicts %g, want %g", gen, got, want)
		}
	}
}

// TestPoisonedCandidateRejected injects a TrainFunc that returns a bundle
// wildly worse than the (accurate) incumbent. The holdout gate must refuse
// the swap and keep the old model serving — on every retry.
func TestPoisonedCandidateRejected(t *testing.T) {
	j := obs.NewJournal(0)

	// Accurate incumbent: constant models matching the fabricated truth
	// (SpMV norm 1.0, conv norm 4.0), trained from two synthetic samples.
	goodSamples := []trainer.Sample{
		constSample(featVec(t, 101), 1.0, 4.0),
		constSample(featVec(t, 102), 1.0, 4.0),
	}
	incumbent, err := trainer.Train(goodSamples, gbt.DefaultParams(), 1)
	if err != nil {
		t.Fatal(err)
	}
	tgt := &fakeTarget{preds: incumbent, handles: 2}

	// Poisoned candidate: predicts SpMV norm 9.0 / conv norm 0.0 — as wrong
	// as it gets against a truth of 1.0 / 4.0.
	poison, err := trainer.Train([]trainer.Sample{
		constSample(featVec(t, 103), 9.0, 0.0),
		constSample(featVec(t, 104), 9.0, 0.0),
	}, gbt.DefaultParams(), 1)
	if err != nil {
		t.Fatal(err)
	}

	cfg := loopConfig(j, tgt)
	// The incumbent predicts well, so relative error stays ~0; drive drift
	// through cumulative regret instead.
	cfg.RegretThreshold = 0.01
	cfg.TrainFunc = func([]trainer.Sample, gbt.Params, int) (*core.Predictors, error) {
		return poison, nil
	}
	l, err := retrain.New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	for seed := int64(1); seed <= 12; seed++ {
		appendConverted(j, featVec(t, seed), 1.0, 1.0, 0.004) // 12 x 4ms regret > 10ms threshold
	}
	res := l.Tick()
	if len(res.Drifted) == 0 || !res.Retrained {
		t.Fatalf("tick = %+v, want drift + retrain attempt", res)
	}
	if res.Swapped {
		t.Fatal("poisoned candidate was swapped in")
	}
	if tgt.preds != incumbent || tgt.swaps != 0 {
		t.Fatal("incumbent bundle was replaced or SetPredictors called")
	}
	st := l.Status()
	if st.Rejections != 1 || st.Swaps != 0 || st.Generation != 0 {
		t.Fatalf("status = %+v, want 1 rejection, 0 swaps, generation 0", st)
	}
	if st.LastError == "" {
		t.Error("rejection left no LastError for /debug/retrain")
	}

	// Drift evidence is NOT reset on rejection: the next tick retries (and
	// is refused again), still without touching the incumbent.
	res = l.Tick()
	if !res.Retrained || res.Swapped {
		t.Fatalf("retry tick = %+v, want another rejected retrain", res)
	}
	if st := l.Status(); st.Rejections != 2 || st.Retrains != 2 || tgt.preds != incumbent {
		t.Fatalf("retry status = %+v (target swaps %d)", st, tgt.swaps)
	}
}

// TestHarvestFiltersAndPending pins the harvest contract: canceled traces,
// stage-0 skips and stage-1-only traces are consumed silently; a completed
// stage-2 trace with no post-decision calls yet *blocks* the walk until its
// ledger fills in (journal Update), then harvests.
func TestHarvestFiltersAndPending(t *testing.T) {
	j := obs.NewJournal(0)
	tgt := &fakeTarget{handles: 1}
	l, err := retrain.New(loopConfig(j, tgt))
	if err != nil {
		t.Fatal(err)
	}
	fv := featVec(t, 1)

	j.Append(obs.DecisionTrace{Canceled: true, Stage2Ran: true, Features: fv})
	j.Append(obs.DecisionTrace{Stage0Skip: true}) // stage 2 never ran
	j.Append(obs.DecisionTrace{Stage1Err: "too noisy"})
	if res := l.Tick(); res.Harvested != 0 {
		t.Fatalf("harvested %d from unusable traces, want 0", res.Harvested)
	}
	if st := l.Status(); st.TracesSeen != 3 || st.PendingTraceID != 4 {
		t.Fatalf("status = %+v, want 3 traces consumed, next id 4", st)
	}

	// A decided trace whose handle hasn't served any post-decision call yet:
	// not consumable, not skippable — the walk parks on it.
	id := j.Append(obs.DecisionTrace{
		Stage2Ran: true, Chosen: "ell", Converted: true, Features: fv,
		ConvertSeconds: 4e-3,
		Ledger:         obs.Ledger{BaselineSpMVSeconds: 1e-3},
	})
	appendConverted(j, featVec(t, 2), 1, 1, 0) // newer, already complete
	if res := l.Tick(); res.Harvested != 0 {
		t.Fatalf("harvested %d past a pending trace, want 0", res.Harvested)
	}
	if st := l.Status(); st.PendingTraceID != id {
		t.Fatalf("walk parked at %d, want %d", st.PendingTraceID, id)
	}

	// The ledger fills in (exactly what Adaptive.SpMV does post-decision);
	// the next tick harvests the parked trace AND the newer one behind it.
	j.Update(id, func(tr *obs.DecisionTrace) {
		tr.Ledger.RecordPost(1e-3)
	})
	if res := l.Tick(); res.Harvested != 2 {
		t.Fatalf("harvested %d after the ledger filled in, want 2", res.Harvested)
	}
}

// constSample builds a training sample with constant normalized targets for
// the ELL format.
func constSample(fv []float64, spmvNorm, convNorm float64) trainer.Sample {
	return trainer.Sample{
		Name:     "const",
		Features: fv,
		CSRTime:  1e-3,
		SpMVNorm: map[sparse.Format]float64{sparse.FmtCSR: 1, sparse.FmtELL: spmvNorm},
		ConvNorm: map[sparse.Format]float64{sparse.FmtELL: convNorm},
	}
}

func closeTo(got, want float64) bool { return math.Abs(got-want) < 1e-9 }
