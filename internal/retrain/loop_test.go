package retrain_test

import (
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/retrain"
)

// TestStartStopBackgroundLoop exercises the ticker path the synchronous
// golden tests bypass: a started loop must harvest, drift and swap on its
// own, Stop must drain the in-flight tick, and both calls must be
// idempotent.
func TestStartStopBackgroundLoop(t *testing.T) {
	j := obs.NewJournal(0)
	tgt := &fakeTarget{handles: 2}
	cfg := loopConfig(j, tgt)
	cfg.Interval = time.Millisecond
	l, err := retrain.New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	for seed := int64(1); seed <= 12; seed++ {
		appendConverted(j, featVec(t, seed), 0.05, 1.0, 0.004)
	}
	l.Start()
	l.Start() // idempotent
	deadline := time.Now().Add(10 * time.Second)
	for l.Status().Generation == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("background loop never swapped: %+v", l.Status())
		}
		time.Sleep(5 * time.Millisecond)
	}
	l.Stop()
	l.Stop() // idempotent

	st := l.Status()
	if st.Generation < 1 || st.Swaps < 1 || st.TracesSeen != 12 {
		t.Fatalf("status after stop = %+v, want >=1 generation from 12 traces", st)
	}
	if tgt.preds == nil || tgt.preds.Generation != st.Generation {
		t.Fatalf("target bundle generation = %v, status says %d", tgt.preds, st.Generation)
	}

	// The loop stays usable synchronously after Stop.
	if res := l.Tick(); res.Err != nil {
		t.Fatalf("tick after stop: %v", res.Err)
	}
}
