package ocs

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (see DESIGN.md §4 for the index), plus kernel-level benches
// for the SpMV and conversion substrate. The experiment benches run on the
// deterministic model oracle so their reported metrics are stable; the
// kernel benches measure the real Go kernels on this machine.
//
// Regenerate everything with:
//
//	go test -bench=. -benchmem

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/arima"
	"repro/internal/experiments"
	"repro/internal/features"
	"repro/internal/gbt"
	"repro/internal/matgen"
	"repro/internal/sparse"
	"repro/internal/timing"
)

// benchCtx builds the shared experiment context once per benchmark binary.
var (
	benchCtxOnce sync.Once
	benchCtx     *experiments.Context
	benchCtxErr  error
)

func experimentContext(b *testing.B) *experiments.Context {
	b.Helper()
	benchCtxOnce.Do(func() {
		opt := experiments.DefaultOptions()
		opt.TrainCount = 64
		opt.EvalCount = 32
		opt.MinSize = 400
		opt.MaxSize = 3000
		opt.Params.NumRounds = 40
		benchCtx, benchCtxErr = experiments.NewContext(opt, timing.NewModelOracle())
	})
	if benchCtxErr != nil {
		b.Fatal(benchCtxErr)
	}
	return benchCtx
}

// ---------------------------------------------------------------------------
// Experiment benchmarks (E1-E11 of DESIGN.md).

// BenchmarkFig2OOHistogram regenerates Figure 2: the histogram of PageRank
// speedups under oracle overhead-oblivious selection. Reported metric:
// fraction of runs that slow down.
func BenchmarkFig2OOHistogram(b *testing.B) {
	c := experimentContext(b)
	var slow float64
	for i := 0; i < b.N; i++ {
		h, err := c.RunFig2()
		if err != nil {
			b.Fatal(err)
		}
		slow = h.SlowdownFraction(0.95)
	}
	b.ReportMetric(slow, "slowdown-frac")
}

// BenchmarkTable3ConversionCost regenerates Table III: conversion cost in
// CSR-SpMV units. Reported metric: corpus-wide maximum ratio.
func BenchmarkTable3ConversionCost(b *testing.B) {
	c := experimentContext(b)
	var maxRatio float64
	for i := 0; i < b.N; i++ {
		t3 := c.RunTable3()
		maxRatio = 0
		for _, r := range t3.Rows {
			if r.Max > maxRatio {
				maxRatio = r.Max
			}
		}
	}
	b.ReportMetric(maxRatio, "max-conv/spmv")
}

// BenchmarkTable4FavoriteFormats regenerates Table IV. Reported metric: the
// number of matrices whose favorite format changes between OO and OC(100).
func BenchmarkTable4FavoriteFormats(b *testing.B) {
	c := experimentContext(b)
	var moved float64
	for i := 0; i < b.N; i++ {
		t4 := c.RunTable4()
		moved = float64(t4.OC[100][sparse.FmtCSR] - t4.OO[sparse.FmtCSR])
	}
	b.ReportMetric(moved, "moved-to-CSR@100")
}

// BenchmarkTable5PredictionError regenerates Table V: 5-fold CV errors of
// the primary predictors. Reported metric: worst per-format SpMV-time error.
func BenchmarkTable5PredictionError(b *testing.B) {
	c := experimentContext(b)
	var worst float64
	for i := 0; i < b.N; i++ {
		t5, err := c.RunTable5()
		if err != nil {
			b.Fatal(err)
		}
		worst = 0
		for _, r := range t5.Rows {
			if r.SpMVError > worst {
				worst = r.SpMVError
			}
		}
	}
	b.ReportMetric(worst*100, "worst-spmv-err-%")
}

// BenchmarkFig5SpMVFrame regenerates Figure 5: SpMVframe speedups vs loop
// length. Reported metrics: OC speedup at the longest loop and OO speedup
// at the shortest (the slowdown the paper highlights).
func BenchmarkFig5SpMVFrame(b *testing.B) {
	c := experimentContext(b)
	var ocLong, ooShort float64
	for i := 0; i < b.N; i++ {
		f5 := c.RunFig5()
		ooShort = f5.Points[0].UBOO
		ocLong = f5.Points[len(f5.Points)-1].SpeedupOC
	}
	b.ReportMetric(ocLong, "OC@5000iters")
	b.ReportMetric(ooShort, "OO@10iters")
}

// BenchmarkStage1Gate regenerates the stage-1 accuracy report (§V-D text).
// Reported metric: worst per-application gate accuracy.
func BenchmarkStage1Gate(b *testing.B) {
	c := experimentContext(b)
	var worst float64
	for i := 0; i < b.N; i++ {
		rep, err := c.RunStage1()
		if err != nil {
			b.Fatal(err)
		}
		worst = 1
		for _, r := range rep.Rows {
			if r.Runs > 0 && r.GateAccuracy < worst {
				worst = r.GateAccuracy
			}
		}
	}
	b.ReportMetric(worst*100, "worst-gate-acc-%")
}

// BenchmarkTable6AppSpeedup regenerates Table VI: whole-application
// speedups. Reported metrics: geometric-mean OC speedup across the four
// apps, and the same for the OO upper bound.
func BenchmarkTable6AppSpeedup(b *testing.B) {
	c := experimentContext(b)
	var oc, oo float64
	for i := 0; i < b.N; i++ {
		t6, err := c.RunTable6()
		if err != nil {
			b.Fatal(err)
		}
		oc, oo = 1, 1
		for _, r := range t6.Rows {
			oc *= r.SpeedupOC
			oo *= r.UBOO
		}
		n := float64(len(t6.Rows))
		oc = pow(oc, 1/n)
		oo = pow(oo, 1/n)
	}
	b.ReportMetric(oc, "SpeedupOC")
	b.ReportMetric(oo, "UB_OO")
}

// BenchmarkTable7FormatDistribution regenerates Table VII. Reported metric:
// total conversions the OC scheme performed across all apps.
func BenchmarkTable7FormatDistribution(b *testing.B) {
	c := experimentContext(b)
	var conversions float64
	for i := 0; i < b.N; i++ {
		t7, err := c.RunTable7()
		if err != nil {
			b.Fatal(err)
		}
		conversions = 0
		for _, app := range t7.Apps {
			for f, n := range t7.OC[app] {
				if f != sparse.FmtCSR {
					conversions += float64(n)
				}
			}
		}
	}
	b.ReportMetric(conversions, "OC-conversions")
}

// BenchmarkFig6OCHistogram regenerates Figure 6. Reported metric: worst
// per-run OC speedup (the paper's point is that this stays near 1).
func BenchmarkFig6OCHistogram(b *testing.B) {
	c := experimentContext(b)
	var worst float64
	for i := 0; i < b.N; i++ {
		h, err := c.RunFig6()
		if err != nil {
			b.Fatal(err)
		}
		worst = h.Minimum
	}
	b.ReportMetric(worst, "worst-speedup")
}

// BenchmarkTable8CaseStudies regenerates Table VIII. Reported metric: the
// best per-matrix OC speedup among the case studies.
func BenchmarkTable8CaseStudies(b *testing.B) {
	c := experimentContext(b)
	var best float64
	for i := 0; i < b.N; i++ {
		t8, err := c.RunTable8()
		if err != nil {
			b.Fatal(err)
		}
		best = 0
		for _, r := range t8.Rows {
			if r.SpeedupOC > best {
				best = r.SpeedupOC
			}
		}
	}
	b.ReportMetric(best, "best-case-speedup")
}

// BenchmarkPredictionOverhead regenerates the §V-D overhead report AND
// measures the real feature-extraction cost of this machine's
// implementation relative to one parallel CSR SpMV. Reported metric:
// measured extraction cost in SpMV-equivalents (paper band: 2x-4x).
func BenchmarkPredictionOverhead(b *testing.B) {
	c := experimentContext(b)
	rep := c.RunOverhead()
	b.ReportMetric(rep.FeatureMedian, "model-feat-xSpMV")

	// Real measurement on a mid-size matrix.
	a, err := BandedMatrix(20000, 7, 1)
	if err != nil {
		b.Fatal(err)
	}
	rows, cols := a.Dims()
	x := make([]float64, cols)
	y := make([]float64, rows)
	oracle := timing.NewMeasuredOracle(timing.MeasureOptions{Reps: 5, Parallel: true, Lim: sparse.DefaultLimits})
	spmvT, _ := oracle.SpMVTime(a, sparse.FmtCSR)
	featT := oracle.FeatureTime(a)
	if spmvT > 0 {
		b.ReportMetric(featT/spmvT, "real-feat-xSpMV")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		features.Extract(a)
	}
	_ = x
	_ = y
}

func pow(x, p float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Pow(x, p)
}

// ---------------------------------------------------------------------------
// Kernel benchmarks: the substrate the experiments run on.

// benchMatrices caches per-family matrices for the kernel benches.
var (
	benchMatOnce sync.Once
	benchMats    map[string]*sparse.CSR
)

func kernelMatrices(b *testing.B) map[string]*sparse.CSR {
	b.Helper()
	benchMatOnce.Do(func() {
		benchMats = map[string]*sparse.CSR{}
		for _, fam := range []matgen.Family{matgen.FamBanded, matgen.FamRandom, matgen.FamPowerLaw, matgen.FamBlock} {
			m, err := matgen.Generate(matgen.Spec{
				Name: fam.String(), Family: fam, Size: 30000, Degree: 10, Seed: 9,
			})
			if err == nil {
				benchMats[fam.String()] = m
			}
		}
	})
	return benchMats
}

// benchLimits relax the BSR fill cap so blocky-vs-not comparisons appear,
// but keep the DIA/ELL caps at their defaults: with unbounded caps a
// 30000-row scatter matrix pads DIA to a ~60000-diagonal, >100 GB array —
// a configuration no sane library (or this one, under DefaultLimits) would
// ever build. Formats invalid for a matrix are skipped, exactly as the
// selector skips them.
var benchLimits = sparse.Limits{
	DIAFill:        sparse.DefaultLimits.DIAFill,
	ELLFill:        sparse.DefaultLimits.ELLFill,
	BSRFill:        1e9,
	BSRBlockSize:   4,
	HYBRowFraction: 1.0 / 3.0,
}

// BenchmarkSpMV measures the parallel SpMV kernel of every format on every
// structural family.
func BenchmarkSpMV(b *testing.B) {
	for name, a := range kernelMatrices(b) {
		for _, f := range sparse.AllFormats {
			m, err := sparse.ConvertFromCSR(a, f, benchLimits)
			if err != nil {
				continue
			}
			rows, cols := m.Dims()
			x := make([]float64, cols)
			for i := range x {
				x[i] = 1
			}
			y := make([]float64, rows)
			b.Run(name+"/"+f.String(), func(b *testing.B) {
				b.SetBytes(m.Bytes())
				for i := 0; i < b.N; i++ {
					m.SpMVParallel(y, x)
				}
			})
		}
	}
}

// BenchmarkConvert measures the CSR->format conversions (the overhead this
// whole paper is about).
func BenchmarkConvert(b *testing.B) {
	for name, a := range kernelMatrices(b) {
		for _, f := range sparse.AllFormats {
			if f == sparse.FmtCSR {
				continue
			}
			if _, err := sparse.ConvertFromCSR(a, f, benchLimits); err != nil {
				continue
			}
			b.Run(name+"/"+f.String(), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := sparse.ConvertFromCSR(a, f, benchLimits); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkSpMM measures the multi-vector product against k separate SpMV
// calls (the block-Krylov optimization).
func BenchmarkSpMM(b *testing.B) {
	a := kernelMatrices(b)["random"]
	if a == nil {
		b.Skip("no random kernel matrix")
	}
	rows, cols := a.Dims()
	const k = 8
	x := make([]float64, cols*k)
	for i := range x {
		x[i] = 1
	}
	y := make([]float64, rows*k)
	b.Run("blocked", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			a.SpMMParallel(y, x, k)
		}
	})
	xc := make([]float64, cols)
	yc := make([]float64, rows)
	b.Run("k-spmv", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for c := 0; c < k; c++ {
				a.SpMVParallel(yc, xc)
			}
		}
	})
}

// BenchmarkFeatureExtract measures Table I feature extraction (the dominant
// component of T_predict).
func BenchmarkFeatureExtract(b *testing.B) {
	for name, a := range kernelMatrices(b) {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				features.Extract(a)
			}
		})
	}
}

// BenchmarkGBTPredict measures one stage-2 model inference.
func BenchmarkGBTPredict(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	ds := &gbt.Dataset{}
	for i := 0; i < 300; i++ {
		row := make([]float64, features.NumFeatures)
		for j := range row {
			row[j] = rng.Float64()
		}
		ds.X = append(ds.X, row)
		ds.Y = append(ds.Y, rng.Float64())
	}
	m, err := gbt.Train(ds, nil, gbt.DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	x := ds.X[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Predict(x)
	}
}

// BenchmarkARIMATripcount measures one stage-1 prediction (fit + forecast
// over a 15-point progress series).
func BenchmarkARIMATripcount(b *testing.B) {
	tc := arima.DefaultTripcount()
	progress := make([]float64, 15)
	r := 1.0
	for i := range progress {
		r *= 0.98
		progress[i] = r
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tc.PredictTotal(progress, 1e-8); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAdaptivePipeline measures the full stage-1 + stage-2 + convert
// pipeline the wrapper runs once per solve.
func BenchmarkAdaptivePipeline(b *testing.B) {
	a, err := BandedMatrix(20000, 7, 3)
	if err != nil {
		b.Fatal(err)
	}
	preds, err := trainBenchPredictors()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ad := NewAdaptive(a, 1e-8, preds)
		r := 1.0
		for it := 0; it < 16; it++ {
			r *= 0.995
			ad.RecordProgress(r)
		}
	}
}

var (
	benchPredsOnce sync.Once
	benchPreds     *Predictors
	benchPredsErr  error
)

func trainBenchPredictors() (*Predictors, error) {
	benchPredsOnce.Do(func() {
		c := benchCtx
		if c == nil {
			opt := experiments.DefaultOptions()
			opt.TrainCount = 64
			opt.EvalCount = 32
			opt.MinSize = 400
			opt.MaxSize = 3000
			opt.Params.NumRounds = 40
			var err error
			c, err = experiments.NewContext(opt, timing.NewModelOracle())
			if err != nil {
				benchPredsErr = err
				return
			}
		}
		benchPreds = c.Preds
	})
	return benchPreds, benchPredsErr
}
